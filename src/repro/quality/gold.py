"""Gold-standard (qualification) questions for worker quality estimation.

A widely used quality-control technique the paper's component is meant to
host: mix a small number of tasks whose answers are already known ("gold"
questions) into the published workload, estimate every worker's accuracy from
their answers to the gold questions alone, and then (a) down-weight or drop
workers who fail them and (b) feed the estimated accuracies into weighted
majority vote.

The estimator never looks at non-gold answers, so it cannot leak ground truth
into the evaluation of the aggregation methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Mapping

from repro.quality.aggregation import VoteTable
from repro.utils.validation import require_fraction, require_positive


@dataclass
class GoldReport:
    """Per-worker quality estimated from gold questions.

    Attributes:
        worker_accuracy: worker id -> fraction of gold questions answered
            correctly (only workers who answered at least one gold question).
        gold_answers: worker id -> number of gold questions the worker saw.
        failed_workers: workers whose gold accuracy fell below the pass
            threshold.
        pass_threshold: The threshold used to decide failure.
    """

    worker_accuracy: dict[str, float] = field(default_factory=dict)
    gold_answers: dict[str, int] = field(default_factory=dict)
    failed_workers: list[str] = field(default_factory=list)
    pass_threshold: float = 0.6

    def passed_workers(self) -> list[str]:
        """Workers whose gold accuracy met the threshold, sorted."""
        return sorted(set(self.worker_accuracy) - set(self.failed_workers))


class GoldStandard:
    """Estimates worker quality from known-answer (gold) items.

    Args:
        gold_answers: Mapping from gold item id to its known true answer.
            Item ids use the same key space as the vote table being filtered
            (for CrowdData that is the row index).
        pass_threshold: Workers with gold accuracy strictly below this are
            flagged as failed.
        min_gold_answers: Workers who saw fewer gold questions than this are
            neither trusted nor failed (insufficient evidence); their
            accuracy is reported but they are not flagged.
    """

    def __init__(
        self,
        gold_answers: Mapping[Hashable, Any],
        pass_threshold: float = 0.6,
        min_gold_answers: int = 1,
    ):
        if not gold_answers:
            raise ValueError("gold_answers must not be empty")
        require_fraction("pass_threshold", pass_threshold)
        require_positive("min_gold_answers", min_gold_answers)
        self.gold_answers = dict(gold_answers)
        self.pass_threshold = pass_threshold
        self.min_gold_answers = min_gold_answers

    # -- estimation -------------------------------------------------------------

    def evaluate(self, votes: VoteTable) -> GoldReport:
        """Estimate per-worker accuracy from the gold items in *votes*."""
        correct: dict[str, int] = {}
        seen: dict[str, int] = {}
        for item_id, item_votes in votes.items():
            if item_id not in self.gold_answers:
                continue
            truth = self.gold_answers[item_id]
            for worker_id, answer in item_votes:
                seen[worker_id] = seen.get(worker_id, 0) + 1
                if answer == truth:
                    correct[worker_id] = correct.get(worker_id, 0) + 1
        report = GoldReport(pass_threshold=self.pass_threshold)
        for worker_id, count in seen.items():
            accuracy = correct.get(worker_id, 0) / count
            report.worker_accuracy[worker_id] = accuracy
            report.gold_answers[worker_id] = count
            if count >= self.min_gold_answers and accuracy < self.pass_threshold:
                report.failed_workers.append(worker_id)
        report.failed_workers.sort()
        return report

    # -- filtering ----------------------------------------------------------------

    def filter_votes(self, votes: VoteTable, report: GoldReport | None = None) -> dict[Hashable, list[tuple[str, Any]]]:
        """Return *votes* with failed workers' answers removed.

        Items whose every answer came from failed workers keep their original
        answers (dropping everything would make the item unanswerable, which
        is worse than keeping low-quality answers).
        """
        report = report or self.evaluate(votes)
        failed = set(report.failed_workers)
        filtered: dict[Hashable, list[tuple[str, Any]]] = {}
        for item_id, item_votes in votes.items():
            kept = [(worker, answer) for worker, answer in item_votes if worker not in failed]
            filtered[item_id] = kept if kept else list(item_votes)
        return filtered

    def non_gold_items(self, votes: VoteTable) -> dict[Hashable, list[tuple[str, Any]]]:
        """Return the subset of *votes* that are not gold questions."""
        return {
            item_id: list(item_votes)
            for item_id, item_votes in votes.items()
            if item_id not in self.gold_answers
        }


def inject_gold(objects: list[Any], gold_objects: Mapping[Any, Any], every: int = 5) -> tuple[list[Any], dict[int, Any]]:
    """Interleave gold objects into a task list.

    Args:
        objects: The real objects to be published.
        gold_objects: Mapping from gold object to its known answer.
        every: One gold object is inserted after every *every* real objects.

    Returns:
        (combined object list, mapping from combined-list index to the gold
        answer at that index) — the index mapping is exactly what
        :class:`GoldStandard` expects when CrowdData uses row indices as item
        ids.
    """
    require_positive("every", every)
    combined: list[Any] = []
    gold_positions: dict[int, Any] = {}
    gold_items = list(gold_objects.items())
    gold_cursor = 0
    for position, obj in enumerate(objects):
        combined.append(obj)
        if (position + 1) % every == 0 and gold_cursor < len(gold_items):
            gold_obj, gold_answer = gold_items[gold_cursor]
            gold_positions[len(combined)] = gold_answer
            combined.append(gold_obj)
            gold_cursor += 1
    # Any gold items that did not fit the cadence go at the end.
    while gold_cursor < len(gold_items):
        gold_obj, gold_answer = gold_items[gold_cursor]
        gold_positions[len(combined)] = gold_answer
        combined.append(gold_obj)
        gold_cursor += 1
    return combined, gold_positions
