"""Confidence measures over collected answers.

Used by adaptive operators (e.g. the crowdsourced join can stop collecting
answers for a pair once confidence is high enough) and by the examination
API to surface which decisions are shaky.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any, Sequence

from repro.exceptions import InsufficientAnswersError


def vote_confidence(answers: Sequence[Any]) -> float:
    """Return the plurality share of the most common answer.

    >>> vote_confidence(["Yes", "Yes", "No"])
    0.6666666666666666
    """
    if not answers:
        raise InsufficientAnswersError("cannot compute confidence of zero answers")
    counts = Counter(answers)
    return max(counts.values()) / len(answers)


def answer_entropy(answers: Sequence[Any]) -> float:
    """Return the Shannon entropy (bits) of the answer distribution.

    Zero means unanimous agreement; higher values mean more disagreement.
    """
    if not answers:
        raise InsufficientAnswersError("cannot compute entropy of zero answers")
    counts = Counter(answers)
    total = len(answers)
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def wilson_lower_bound(successes: int, total: int, z: float = 1.96) -> float:
    """Wilson-score lower bound on a binomial proportion.

    A conservative estimate of "what fraction of workers would agree with the
    majority if we kept asking", useful for deciding whether to request more
    assignments for an item.
    """
    if total <= 0:
        raise InsufficientAnswersError("total must be positive")
    if not 0 <= successes <= total:
        raise ValueError(f"successes must be in [0, {total}], got {successes}")
    phat = successes / total
    denominator = 1 + z * z / total
    centre = phat + z * z / (2 * total)
    margin = z * math.sqrt((phat * (1 - phat) + z * z / (4 * total)) / total)
    return max(0.0, (centre - margin) / denominator)
