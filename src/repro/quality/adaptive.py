"""Adaptive redundancy: ask for more answers only where they are needed.

Fixed redundancy (Bob's ``n_assignments=3``) wastes money on easy items and
under-spends on ambiguous ones.  The adaptive policy starts with a small
number of assignments per task and requests more — in rounds — only for the
items whose current answers are not yet confident enough, up to a cap.  This
is the classic budget-optimisation technique of the crowdsourcing literature
and one of the "widely used techniques" the paper's quality-control component
is meant to host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.quality.confidence import vote_confidence, wilson_lower_bound
from repro.utils.validation import require_fraction, require_positive


@dataclass(frozen=True)
class AdaptivePolicy:
    """Parameters of the adaptive-redundancy loop.

    Attributes:
        initial_assignments: Assignments requested when a task is published.
        max_assignments: Hard per-task cap; no task ever exceeds it.
        min_assignments: An item cannot be declared resolved with fewer than
            this many answers (a single answer is always "unanimous", so a
            floor of 2 is what makes the confidence test meaningful).
        confidence_threshold: Stop collecting for an item once the plurality
            share of its answers reaches this value.
        extra_per_round: Additional assignments requested per round for each
            unresolved item.
        use_wilson: Judge confidence by the Wilson lower bound of the
            plurality share instead of the raw share — more conservative for
            small answer counts.
    """

    initial_assignments: int = 2
    max_assignments: int = 7
    min_assignments: int = 2
    confidence_threshold: float = 0.75
    extra_per_round: int = 2
    use_wilson: bool = False

    def __post_init__(self) -> None:
        require_positive("initial_assignments", self.initial_assignments)
        require_positive("max_assignments", self.max_assignments)
        require_positive("min_assignments", self.min_assignments)
        require_positive("extra_per_round", self.extra_per_round)
        require_fraction("confidence_threshold", self.confidence_threshold)
        if self.max_assignments < self.initial_assignments:
            raise ValueError(
                "max_assignments must be >= initial_assignments "
                f"({self.max_assignments} < {self.initial_assignments})"
            )
        if self.min_assignments > self.max_assignments:
            raise ValueError(
                "min_assignments must be <= max_assignments "
                f"({self.min_assignments} > {self.max_assignments})"
            )

    # -- decision logic ------------------------------------------------------

    def confidence(self, answers: Sequence[Any]) -> float:
        """Return the confidence score of the collected *answers*."""
        if not answers:
            return 0.0
        share = vote_confidence(answers)
        if not self.use_wilson:
            return share
        winners = round(share * len(answers))
        return wilson_lower_bound(winners, len(answers))

    def is_resolved(self, answers: Sequence[Any]) -> bool:
        """Return True when no further answers should be requested."""
        if len(answers) >= self.max_assignments:
            return True
        if len(answers) < self.min_assignments:
            return False
        return self.confidence(answers) >= self.confidence_threshold

    def next_batch(self, answers: Sequence[Any]) -> int:
        """Return how many extra assignments to request for an unresolved item."""
        if self.is_resolved(answers):
            return 0
        remaining = self.max_assignments - len(answers)
        return min(self.extra_per_round, remaining)


@dataclass
class AdaptiveCollectionStats:
    """What the adaptive loop actually did (reported by CrowdData).

    Attributes:
        rounds: Number of collection rounds performed.
        answers_collected: Total answers collected across all items.
        items_resolved_early: Items that stopped before the assignment cap.
        items_at_cap: Items that hit ``max_assignments`` without reaching the
            confidence threshold.
    """

    rounds: int = 0
    answers_collected: int = 0
    items_resolved_early: int = 0
    items_at_cap: int = 0

    def to_dict(self) -> dict[str, int]:
        """Return a JSON-friendly representation for the manipulation log."""
        return {
            "rounds": self.rounds,
            "answers_collected": self.answers_collected,
            "items_resolved_early": self.items_resolved_early,
            "items_at_cap": self.items_at_cap,
        }
