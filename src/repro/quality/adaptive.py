"""Adaptive redundancy: ask for more answers only where they are needed.

Fixed redundancy (Bob's ``n_assignments=3``) wastes money on easy items and
under-spends on ambiguous ones.  The adaptive policy starts with a small
number of assignments per task and requests more — in rounds — only for the
items whose current answers are not yet confident enough, up to a cap.  This
is the classic budget-optimisation technique of the crowdsourcing literature
and one of the "widely used techniques" the paper's quality-control component
is meant to host.

The policy exposes two equivalent decision surfaces:

* the historical answer-list form (``confidence(answers)``,
  ``is_resolved(answers)``, ``next_batch(answers)``) used by tests and by
  the per-item classification at the end of a collection;
* a count-based form (``confidence_from_counts``, ``is_resolved_counts``,
  ``next_batch_counts``) consumed by the streaming adaptive loop, which
  tracks per-item answer tallies incrementally (see
  :mod:`repro.quality.incremental`) instead of re-materialising every
  answer list each round.

Both forms compute the plurality winner count **exactly** with
:class:`collections.Counter`.  The count used to be reconstructed as
``round(share * len(answers))`` — a float product whose banker's rounding
can misreport the winner count by one the moment the share stops being an
exact ``count / len`` ratio (e.g. a posterior-weighted share), silently
shifting the Wilson bound.  The exact computation removes that hazard for
every caller.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.quality.confidence import wilson_lower_bound
from repro.utils.validation import require_fraction, require_positive


@dataclass(frozen=True)
class AdaptivePolicy:
    """Parameters of the adaptive-redundancy loop.

    Attributes:
        initial_assignments: Assignments requested when a task is published.
        max_assignments: Hard per-task cap; no task ever exceeds it.
        min_assignments: An item cannot be declared resolved with fewer than
            this many answers (a single answer is always "unanimous", so a
            floor of 2 is what makes the confidence test meaningful).
        confidence_threshold: Stop collecting for an item once the plurality
            share of its answers reaches this value.
        extra_per_round: Additional assignments requested per round for each
            unresolved item.
        use_wilson: Judge confidence by the Wilson lower bound of the
            plurality share instead of the raw share — more conservative for
            small answer counts.
    """

    initial_assignments: int = 2
    max_assignments: int = 7
    min_assignments: int = 2
    confidence_threshold: float = 0.75
    extra_per_round: int = 2
    use_wilson: bool = False

    def __post_init__(self) -> None:
        require_positive("initial_assignments", self.initial_assignments)
        require_positive("max_assignments", self.max_assignments)
        require_positive("min_assignments", self.min_assignments)
        require_positive("extra_per_round", self.extra_per_round)
        require_fraction("confidence_threshold", self.confidence_threshold)
        if self.max_assignments < self.initial_assignments:
            raise ValueError(
                "max_assignments must be >= initial_assignments "
                f"({self.max_assignments} < {self.initial_assignments})"
            )
        if self.min_assignments > self.max_assignments:
            raise ValueError(
                "min_assignments must be <= max_assignments "
                f"({self.min_assignments} > {self.max_assignments})"
            )

    # -- decision logic ------------------------------------------------------

    def confidence_from_counts(self, counts: Mapping[Any, int]) -> float:
        """Confidence score given per-answer tallies (the streaming form).

        The winner count is the exact maximum tally — never reconstructed
        from a float share — so the Wilson bound is computed on the true
        binomial numerator.
        """
        total = sum(counts.values())
        if total <= 0:
            return 0.0
        winners = max(counts.values())
        if not self.use_wilson:
            return winners / total
        return wilson_lower_bound(winners, total)

    def confidence(self, answers: Sequence[Any]) -> float:
        """Return the confidence score of the collected *answers*."""
        if not answers:
            return 0.0
        return self.confidence_from_counts(Counter(answers))

    def is_resolved_counts(self, counts: Mapping[Any, int]) -> bool:
        """Count-based form of :meth:`is_resolved`."""
        total = sum(counts.values())
        if total >= self.max_assignments:
            return True
        if total < self.min_assignments:
            return False
        return self.confidence_from_counts(counts) >= self.confidence_threshold

    def is_resolved(self, answers: Sequence[Any]) -> bool:
        """Return True when no further answers should be requested."""
        return self.is_resolved_counts(Counter(answers))

    def next_batch_counts(self, counts: Mapping[Any, int]) -> int:
        """Count-based form of :meth:`next_batch`."""
        if self.is_resolved_counts(counts):
            return 0
        remaining = self.max_assignments - sum(counts.values())
        return min(self.extra_per_round, remaining)

    def next_batch(self, answers: Sequence[Any]) -> int:
        """Return how many extra assignments to request for an unresolved item."""
        return self.next_batch_counts(Counter(answers))


@dataclass
class AdaptiveCollectionStats:
    """What the adaptive loop actually did (reported by CrowdData).

    Items are counted per *task*, not per table row: several rows sharing
    one deduplicated task contribute a single item (and its answers once)
    to every tally below.

    Attributes:
        rounds: Number of collection rounds performed.
        pages_streamed: Task-run pages fetched across all rounds (the
            round-trip currency of the streaming loop; the legacy loop paid
            one ``get_task_runs`` call per item per round instead).
        answers_collected: Total answers collected across all items.
        items_resolved_early: Items that reached the confidence threshold
            before exhausting the assignment cap.
        items_at_cap: Items that hit ``max_assignments`` without reaching
            the confidence threshold.
        items_below_minimum: Items that ended with fewer than
            ``min_assignments`` answers (e.g. a non-simulating platform
            returned nothing) — previously misfiled as "resolved early".
        extensions_requested: Extra assignments purchased by the loop.
    """

    rounds: int = 0
    pages_streamed: int = 0
    answers_collected: int = 0
    items_resolved_early: int = 0
    items_at_cap: int = 0
    items_below_minimum: int = 0
    extensions_requested: int = 0

    def to_dict(self) -> dict[str, int]:
        """Return a JSON-friendly representation for the manipulation log."""
        return {
            "rounds": self.rounds,
            "pages_streamed": self.pages_streamed,
            "answers_collected": self.answers_collected,
            "items_resolved_early": self.items_resolved_early,
            "items_at_cap": self.items_at_cap,
            "items_below_minimum": self.items_below_minimum,
            "extensions_requested": self.extensions_requested,
        }
