"""Majority vote — the aggregation rule used in Bob's experiment (Figure 2)."""

from __future__ import annotations

from collections import Counter
from typing import Any, Hashable

from repro.quality.aggregation import (
    AggregationResult,
    Aggregator,
    VoteTable,
    Votes,
    register_aggregator,
)


def _majority(votes: Votes, tie_break: str) -> tuple[Any, float]:
    """Return (winning answer, vote share) for one item's votes.

    Ties are broken deterministically so that reruns of an experiment always
    produce the same decision: ``"lexicographic"`` picks the smallest answer
    by string representation, ``"first"`` picks the answer that reached the
    tied count first in submission order.
    """
    counts = Counter(answer for _, answer in votes)
    top_count = max(counts.values())
    tied = [answer for answer, count in counts.items() if count == top_count]
    if len(tied) == 1:
        winner = tied[0]
    elif tie_break == "lexicographic":
        winner = min(tied, key=lambda answer: str(answer))
    else:  # "first"
        winner = next(answer for _, answer in votes if answer in tied)
    return winner, top_count / len(votes)


class MajorityVoteAggregator(Aggregator):
    """Per-item plurality vote with deterministic tie-breaking.

    Args:
        tie_break: ``"lexicographic"`` (default) or ``"first"``.
    """

    name = "mv"

    def __init__(self, tie_break: str = "lexicographic"):
        if tie_break not in ("lexicographic", "first"):
            raise ValueError(f"unknown tie_break {tie_break!r}")
        self.tie_break = tie_break

    def aggregate(self, votes: VoteTable) -> AggregationResult:
        self._validate(votes)
        result = AggregationResult(method=self.name)
        for item_id, item_votes in votes.items():
            winner, share = _majority(item_votes, self.tie_break)
            result.decisions[item_id] = winner
            result.confidences[item_id] = share
        return result


def majority_vote(votes: VoteTable, tie_break: str = "lexicographic") -> dict[Hashable, Any]:
    """Convenience wrapper returning only the per-item decisions."""
    return MajorityVoteAggregator(tie_break=tie_break).aggregate(votes).decisions


register_aggregator("mv", MajorityVoteAggregator)
