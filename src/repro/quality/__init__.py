"""Quality control: turning redundant noisy crowd answers into one result.

Figure 1 of the paper shows a quality-control component between CrowdData and
the crowdsourcing platform.  This package implements the widely used
techniques the paper alludes to:

* majority vote (the rule used in Bob's experiment),
* weighted majority vote (weights from known or estimated worker accuracy),
* Dawid-Skene expectation-maximisation over worker confusion matrices,
* a single-parameter EM variant (GLAD-style, one ability scalar per worker),
* spammer detection from estimated confusion matrices.

Every aggregator consumes the same input shape — a list of (worker_id,
answer) pairs per item — so CrowdData can expose them uniformly as ``mv()``,
``wmv()`` and ``em()`` verbs.
"""

from repro.quality.adaptive import AdaptiveCollectionStats, AdaptivePolicy
from repro.quality.aggregation import Aggregator, AggregationResult, get_aggregator, register_aggregator
from repro.quality.majority_vote import MajorityVoteAggregator, majority_vote
from repro.quality.weighted_vote import WeightedVoteAggregator, weighted_vote
from repro.quality.em import DawidSkeneAggregator, dawid_skene
from repro.quality.glad import OneParameterEMAggregator, one_parameter_em
from repro.quality.spammer import spammer_score, detect_spammers
from repro.quality.confidence import answer_entropy, vote_confidence
from repro.quality.gold import GoldReport, GoldStandard, inject_gold
from repro.quality.incremental import (
    IncrementalAggregator,
    IncrementalMajorityVote,
    OnlineDawidSkene,
)

__all__ = [
    "AdaptivePolicy",
    "AdaptiveCollectionStats",
    "GoldStandard",
    "GoldReport",
    "inject_gold",
    "Aggregator",
    "AggregationResult",
    "get_aggregator",
    "register_aggregator",
    "IncrementalAggregator",
    "IncrementalMajorityVote",
    "OnlineDawidSkene",
    "MajorityVoteAggregator",
    "majority_vote",
    "WeightedVoteAggregator",
    "weighted_vote",
    "DawidSkeneAggregator",
    "dawid_skene",
    "OneParameterEMAggregator",
    "one_parameter_em",
    "spammer_score",
    "detect_spammers",
    "answer_entropy",
    "vote_confidence",
]
