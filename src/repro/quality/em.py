"""Dawid-Skene expectation-maximisation over worker confusion matrices.

The classic (Dawid & Skene 1979) model: each item has a latent true label;
each worker has a confusion matrix giving the probability of reporting label
``l`` when the truth is ``k``.  EM alternates between estimating the posterior
over each item's true label (E-step) and re-estimating worker confusion
matrices and label priors (M-step), starting from majority-vote posteriors.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Hashable

import numpy as np

from repro.quality.aggregation import (
    AggregationResult,
    Aggregator,
    VoteTable,
    register_aggregator,
)


class DawidSkeneAggregator(Aggregator):
    """EM estimation of true labels and per-worker confusion matrices.

    Args:
        max_iterations: Hard cap on EM iterations.
        tolerance: Convergence threshold on the max absolute change of the
            item-label posteriors between iterations.
        smoothing: Laplace smoothing added to confusion-matrix counts so that
            a worker who never produced some label keeps a non-zero
            probability of producing it.
    """

    name = "em"

    def __init__(
        self,
        max_iterations: int = 50,
        tolerance: float = 1e-6,
        smoothing: float = 0.01,
    ):
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        if smoothing < 0:
            raise ValueError(f"smoothing must be non-negative, got {smoothing}")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.smoothing = smoothing

    def aggregate(self, votes: VoteTable) -> AggregationResult:
        self._validate(votes)
        items = list(votes.keys())
        workers = sorted({worker_id for item_votes in votes.values() for worker_id, _ in item_votes})
        labels = sorted(
            {answer for item_votes in votes.values() for _, answer in item_votes},
            key=str,
        )
        item_index = {item: i for i, item in enumerate(items)}
        worker_index = {worker: j for j, worker in enumerate(workers)}
        label_index = {label: k for k, label in enumerate(labels)}

        num_items, num_workers, num_labels = len(items), len(workers), len(labels)

        # answer_matrix[i, j] = label index answered by worker j on item i, or -1.
        answer_matrix = np.full((num_items, num_workers), -1, dtype=np.int64)
        for item, item_votes in votes.items():
            i = item_index[item]
            for worker_id, answer in item_votes:
                answer_matrix[i, worker_index[worker_id]] = label_index[answer]

        posteriors = self._initial_posteriors(votes, items, item_index, label_index)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            priors, confusion = self._m_step(answer_matrix, posteriors, num_labels)
            new_posteriors = self._e_step(answer_matrix, priors, confusion)
            delta = float(np.max(np.abs(new_posteriors - posteriors)))
            posteriors = new_posteriors
            if delta < self.tolerance:
                break

        result = AggregationResult(method=self.name, iterations=iterations)
        for item, i in item_index.items():
            best = int(np.argmax(posteriors[i]))
            result.decisions[item] = labels[best]
            result.confidences[item] = float(posteriors[i, best])
        # Worker quality = average diagonal of the estimated confusion matrix,
        # weighted by the estimated label priors.
        priors, confusion = self._m_step(answer_matrix, posteriors, num_labels)
        for worker, j in worker_index.items():
            diagonal = np.diag(confusion[j])
            result.worker_quality[worker] = float(np.dot(priors, diagonal))
        return result

    # -- EM steps ------------------------------------------------------------------

    @staticmethod
    def _initial_posteriors(
        votes: VoteTable,
        items: list[Hashable],
        item_index: dict[Hashable, int],
        label_index: dict[Any, int],
    ) -> np.ndarray:
        """Start from normalised per-item vote shares (soft majority vote)."""
        posteriors = np.zeros((len(items), len(label_index)), dtype=np.float64)
        for item, item_votes in votes.items():
            i = item_index[item]
            for _, answer in item_votes:
                posteriors[i, label_index[answer]] += 1.0
            posteriors[i] /= posteriors[i].sum()
        return posteriors

    def _m_step(
        self, answer_matrix: np.ndarray, posteriors: np.ndarray, num_labels: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Re-estimate label priors and per-worker confusion matrices."""
        num_items, num_workers = answer_matrix.shape
        priors = posteriors.sum(axis=0)
        priors = priors / priors.sum()

        confusion = np.full(
            (num_workers, num_labels, num_labels), self.smoothing, dtype=np.float64
        )
        for j in range(num_workers):
            answered = answer_matrix[:, j] >= 0
            if not answered.any():
                continue
            answers = answer_matrix[answered, j]
            weights = posteriors[answered]  # shape (n_answered, num_labels)
            for reported in range(num_labels):
                mask = answers == reported
                if mask.any():
                    confusion[j, :, reported] += weights[mask].sum(axis=0)
        # Normalise each row (true label) of each worker's confusion matrix.
        row_sums = confusion.sum(axis=2, keepdims=True)
        confusion = confusion / row_sums
        return priors, confusion

    @staticmethod
    def _e_step(
        answer_matrix: np.ndarray, priors: np.ndarray, confusion: np.ndarray
    ) -> np.ndarray:
        """Recompute item-label posteriors from priors and confusion matrices."""
        num_items, num_workers = answer_matrix.shape
        num_labels = priors.shape[0]
        log_posteriors = np.tile(np.log(priors + 1e-300), (num_items, 1))
        log_confusion = np.log(confusion + 1e-300)
        for j in range(num_workers):
            answered = answer_matrix[:, j] >= 0
            if not answered.any():
                continue
            answers = answer_matrix[answered, j]
            # log_confusion[j][:, answers].T has shape (n_answered, num_labels)
            log_posteriors[answered] += log_confusion[j][:, answers].T
        log_posteriors -= log_posteriors.max(axis=1, keepdims=True)
        posteriors = np.exp(log_posteriors)
        posteriors /= posteriors.sum(axis=1, keepdims=True)
        return posteriors


def dawid_skene(
    votes: VoteTable,
    max_iterations: int = 50,
    tolerance: float = 1e-6,
) -> dict[Hashable, Any]:
    """Convenience wrapper returning only the per-item decisions."""
    aggregator = DawidSkeneAggregator(max_iterations=max_iterations, tolerance=tolerance)
    return aggregator.aggregate(votes).decisions


register_aggregator("em", DawidSkeneAggregator)
