"""One-parameter-per-worker EM (GLAD-style, without item difficulty).

A lighter-weight alternative to full Dawid-Skene: each worker has a single
ability parameter (their probability of answering correctly, shared across
labels).  It converges faster, needs less data per worker, and is the model
weighted majority vote implicitly assumes — so comparing it against both MV
and Dawid-Skene in the quality-control benchmark shows where the extra
confusion-matrix structure pays off.
"""

from __future__ import annotations

from typing import Any, Hashable

import numpy as np

from repro.quality.aggregation import (
    AggregationResult,
    Aggregator,
    VoteTable,
    register_aggregator,
)


class OneParameterEMAggregator(Aggregator):
    """EM with one ability scalar per worker and symmetric error model.

    Args:
        max_iterations: Hard cap on EM iterations.
        tolerance: Convergence threshold on posterior change.
        ability_floor: Lower clamp on estimated ability, keeping the error
            model away from degenerate zero/one probabilities.
    """

    name = "glad"

    def __init__(
        self,
        max_iterations: int = 50,
        tolerance: float = 1e-6,
        ability_floor: float = 0.05,
    ):
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        if not 0.0 < ability_floor < 0.5:
            raise ValueError(f"ability_floor must be in (0, 0.5), got {ability_floor}")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.ability_floor = ability_floor

    def aggregate(self, votes: VoteTable) -> AggregationResult:
        self._validate(votes)
        items = list(votes.keys())
        workers = sorted({worker for item_votes in votes.values() for worker, _ in item_votes})
        labels = sorted({answer for item_votes in votes.values() for _, answer in item_votes}, key=str)
        item_index = {item: i for i, item in enumerate(items)}
        worker_index = {worker: j for j, worker in enumerate(workers)}
        label_index = {label: k for k, label in enumerate(labels)}
        num_items, num_workers, num_labels = len(items), len(workers), len(labels)

        answer_matrix = np.full((num_items, num_workers), -1, dtype=np.int64)
        for item, item_votes in votes.items():
            for worker, answer in item_votes:
                answer_matrix[item_index[item], worker_index[worker]] = label_index[answer]

        # Initial posteriors: vote shares.  Initial abilities: 0.7 for everyone.
        posteriors = np.zeros((num_items, num_labels), dtype=np.float64)
        for item, item_votes in votes.items():
            for _, answer in item_votes:
                posteriors[item_index[item], label_index[answer]] += 1.0
        posteriors /= posteriors.sum(axis=1, keepdims=True)
        abilities = np.full(num_workers, 0.7, dtype=np.float64)

        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            abilities = self._m_step(answer_matrix, posteriors)
            new_posteriors = self._e_step(answer_matrix, posteriors, abilities, num_labels)
            delta = float(np.max(np.abs(new_posteriors - posteriors)))
            posteriors = new_posteriors
            if delta < self.tolerance:
                break

        result = AggregationResult(method=self.name, iterations=iterations)
        for item, i in item_index.items():
            best = int(np.argmax(posteriors[i]))
            result.decisions[item] = labels[best]
            result.confidences[item] = float(posteriors[i, best])
        for worker, j in worker_index.items():
            result.worker_quality[worker] = float(abilities[j])
        return result

    def _m_step(self, answer_matrix: np.ndarray, posteriors: np.ndarray) -> np.ndarray:
        """Re-estimate each worker's ability as expected fraction correct."""
        num_items, num_workers = answer_matrix.shape
        abilities = np.zeros(num_workers, dtype=np.float64)
        for j in range(num_workers):
            answered = answer_matrix[:, j] >= 0
            if not answered.any():
                abilities[j] = 0.5
                continue
            answers = answer_matrix[answered, j]
            expected_correct = posteriors[answered, answers].sum()
            abilities[j] = expected_correct / answered.sum()
        return np.clip(abilities, self.ability_floor, 1.0 - self.ability_floor)

    @staticmethod
    def _e_step(
        answer_matrix: np.ndarray,
        posteriors: np.ndarray,
        abilities: np.ndarray,
        num_labels: int,
    ) -> np.ndarray:
        """Recompute posteriors under the symmetric error model."""
        num_items, num_workers = answer_matrix.shape
        priors = posteriors.sum(axis=0)
        priors /= priors.sum()
        log_posteriors = np.tile(np.log(priors + 1e-300), (num_items, 1))
        wrong_probability = (1.0 - abilities) / max(1, num_labels - 1)
        for j in range(num_workers):
            answered = answer_matrix[:, j] >= 0
            if not answered.any():
                continue
            answers = answer_matrix[answered, j]
            contribution = np.full((answered.sum(), num_labels), np.log(wrong_probability[j] + 1e-300))
            contribution[np.arange(answered.sum()), answers] = np.log(abilities[j] + 1e-300)
            log_posteriors[answered] += contribution
        log_posteriors -= log_posteriors.max(axis=1, keepdims=True)
        new_posteriors = np.exp(log_posteriors)
        new_posteriors /= new_posteriors.sum(axis=1, keepdims=True)
        return new_posteriors


def one_parameter_em(votes: VoteTable, max_iterations: int = 50) -> dict[Hashable, Any]:
    """Convenience wrapper returning only the per-item decisions."""
    return OneParameterEMAggregator(max_iterations=max_iterations).aggregate(votes).decisions


register_aggregator("glad", OneParameterEMAggregator)
