"""Incremental aggregation: quality models updated one page at a time.

The batch aggregators in this package recompute everything from the full
vote table.  That is the wrong shape for the streaming adaptive loop in
:meth:`CrowdData.get_result_adaptive`, which sees answers arrive page by
page over many rounds: recomputing a 10k-item Dawid-Skene model on every
page turns an O(pages) collection into an O(pages × items × iterations)
one.  This module provides the incremental counterpart:

* :class:`IncrementalAggregator` — the contract: ``update(item,
  new_votes)`` folds newly arrived votes for one item into the model,
  ``partial_fit(page)`` folds a whole page, and ``result()`` produces the
  same :class:`AggregationResult` shape as the batch aggregators.
* :class:`IncrementalMajorityVote` — per-item tallies in a
  :class:`collections.Counter`; exactly equivalent to
  :class:`MajorityVoteAggregator` (including both tie-break modes) at a
  cost of O(new votes) per update.
* :class:`OnlineDawidSkene` — an online EM: each ``partial_fit`` runs a
  *damped* E-step on the touched items only, against priors and confusion
  matrices maintained as cached sufficient statistics (so the M-step is an
  O(1) subtraction/addition per touched item, never a full pass).
  ``result()`` optionally polishes with full undamped EM sweeps until the
  posteriors move less than ``tolerance``, which converges to the same
  fixed point as the batch :class:`DawidSkeneAggregator`.
"""

from __future__ import annotations

import abc
from collections import Counter
from typing import Any, Hashable, Mapping, Optional

import numpy as np

from repro.exceptions import QualityControlError
from repro.quality.aggregation import AggregationResult, Votes


class IncrementalAggregator(abc.ABC):
    """Aggregator that can absorb new votes without a full recompute.

    Implementations keep whatever per-item state they need; callers feed
    them *only the votes that are new* since the previous update (the
    streaming collection loop slices each task's run list at the
    previously seen offset).
    """

    #: Registry-style name, overridden by subclasses.
    name = "incremental"

    @abc.abstractmethod
    def update(self, item: Hashable, new_votes: Votes) -> None:
        """Fold newly arrived ``(worker_id, answer)`` pairs for *item*."""

    def partial_fit(self, page: Mapping[Hashable, Votes]) -> None:
        """Fold one page of new votes (item -> new votes for that item)."""
        for item, new_votes in page.items():
            if new_votes:
                self.update(item, new_votes)

    @abc.abstractmethod
    def decision(self, item: Hashable) -> Any:
        """Current decision for *item* (raises if the item is unknown)."""

    @abc.abstractmethod
    def confidence(self, item: Hashable) -> float:
        """Current confidence in ``decision(item)``, in [0, 1]."""

    def counts(self, item: Hashable) -> Optional[Mapping[Any, int]]:
        """Per-answer tallies for *item*, when the model keeps exact counts.

        Returns ``None`` for model-based aggregators whose confidence is a
        posterior rather than a vote share; the adaptive loop then falls
        back to :meth:`confidence`.
        """
        return None

    @abc.abstractmethod
    def result(self) -> AggregationResult:
        """Materialise the full result (same shape as batch aggregators)."""


class IncrementalMajorityVote(IncrementalAggregator):
    """Streaming plurality vote, decision-identical to the batch ``mv``.

    Args:
        tie_break: ``"lexicographic"`` (default) or ``"first"`` — the same
            deterministic modes as :class:`MajorityVoteAggregator`.
            ``"first"`` picks, among tied answers, the one that was *first
            submitted* for the item, which matches the batch rule as long
            as votes are fed in submission order (the streaming collector
            preserves run order).
    """

    name = "mv-incremental"

    def __init__(self, tie_break: str = "lexicographic"):
        if tie_break not in ("lexicographic", "first"):
            raise ValueError(f"unknown tie_break {tie_break!r}")
        self.tie_break = tie_break
        self._counts: dict[Hashable, Counter] = {}
        self._first_seen: dict[Hashable, dict[Any, int]] = {}
        self._arrivals: dict[Hashable, int] = {}

    def update(self, item: Hashable, new_votes: Votes) -> None:
        counts = self._counts.setdefault(item, Counter())
        first_seen = self._first_seen.setdefault(item, {})
        seq = self._arrivals.get(item, 0)
        for _, answer in new_votes:
            counts[answer] += 1
            first_seen.setdefault(answer, seq)
            seq += 1
        self._arrivals[item] = seq

    def _require(self, item: Hashable) -> Counter:
        try:
            counts = self._counts[item]
        except KeyError:
            raise QualityControlError(f"no votes for item {item!r}") from None
        if not counts:
            raise QualityControlError(f"no votes for item {item!r}")
        return counts

    def counts(self, item: Hashable) -> Optional[Mapping[Any, int]]:
        return self._counts.get(item)

    def decision(self, item: Hashable) -> Any:
        counts = self._require(item)
        top = max(counts.values())
        tied = [answer for answer, count in counts.items() if count == top]
        if len(tied) == 1:
            return tied[0]
        if self.tie_break == "lexicographic":
            return min(tied, key=str)
        first_seen = self._first_seen[item]
        return min(tied, key=lambda answer: first_seen[answer])

    def confidence(self, item: Hashable) -> float:
        counts = self._require(item)
        return max(counts.values()) / sum(counts.values())

    def result(self) -> AggregationResult:
        result = AggregationResult(method="mv")
        for item in self._counts:
            result.decisions[item] = self.decision(item)
            result.confidences[item] = self.confidence(item)
        return result


class OnlineDawidSkene(IncrementalAggregator):
    """Online Dawid-Skene EM with cached sufficient statistics.

    The model keeps, alongside per-item posteriors, the two sufficient
    statistics the M-step needs:

    * ``prior_counts[k]`` — the sum of item posteriors for label ``k``;
    * ``confusion_counts[j, k, l]`` — for worker ``j``, the posterior mass
      of true label ``k`` across the votes where the worker reported
      ``l``.

    ``update`` subtracts one item's old contribution, runs a *damped*
    E-step for that item against the current global estimates
    (``new = (1 - damping) * old + damping * e_step``, damping stabilises
    the estimates while statistics are still sparse early in a
    collection), and adds the refreshed contribution back — so every page
    costs O(votes on the page), independent of corpus size.

    ``result(refine=True)`` finishes with full undamped EM sweeps until
    the largest posterior change drops below ``tolerance``, making the
    final decisions converge to the batch :class:`DawidSkeneAggregator`
    fixed point.

    Args:
        damping: Step size of the per-item E-step during streaming updates
            (1.0 = jump straight to the E-step posterior).
        smoothing: Laplace smoothing on confusion rows (same meaning as in
            the batch aggregator).
        tolerance: Convergence threshold of the refinement sweeps.
        max_iterations: Cap on refinement sweeps in :meth:`result`.
    """

    name = "em-incremental"

    def __init__(
        self,
        damping: float = 0.6,
        smoothing: float = 0.01,
        tolerance: float = 1e-6,
        max_iterations: int = 50,
    ):
        if not 0.0 < damping <= 1.0:
            raise ValueError(f"damping must be in (0, 1], got {damping}")
        if smoothing < 0:
            raise ValueError(f"smoothing must be non-negative, got {smoothing}")
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        self.damping = damping
        self.smoothing = smoothing
        self.tolerance = tolerance
        self.max_iterations = max_iterations

        self._labels: list[Any] = []
        self._label_index: dict[Any, int] = {}
        self._workers: list[str] = []
        self._worker_index: dict[str, int] = {}
        #: item -> list of (worker_idx, label_idx) in submission order.
        self._votes: dict[Hashable, list[tuple[int, int]]] = {}
        #: item -> posterior over labels (len == len(self._labels)).
        self._posteriors: dict[Hashable, np.ndarray] = {}
        self._prior_counts = np.zeros(0, dtype=np.float64)
        self._confusion_counts = np.zeros((0, 0, 0), dtype=np.float64)
        self._refine_iterations = 0

    # -- index maintenance --------------------------------------------------

    def _label_id(self, answer: Any) -> int:
        index = self._label_index.get(answer)
        if index is None:
            index = len(self._labels)
            self._labels.append(answer)
            self._label_index[answer] = index
            self._prior_counts = np.pad(self._prior_counts, (0, 1))
            self._confusion_counts = np.pad(
                self._confusion_counts, ((0, 0), (0, 1), (0, 1))
            )
            for item, posterior in self._posteriors.items():
                self._posteriors[item] = np.pad(posterior, (0, 1))
        return index

    def _worker_id(self, worker: str) -> int:
        index = self._worker_index.get(worker)
        if index is None:
            index = len(self._workers)
            self._workers.append(worker)
            self._worker_index[worker] = index
            self._confusion_counts = np.pad(
                self._confusion_counts, ((0, 1), (0, 0), (0, 0))
            )
        return index

    # -- model estimates from cached statistics -----------------------------

    def _current_estimates(self) -> tuple[np.ndarray, np.ndarray]:
        """(priors, confusion) derived from the cached sufficient stats.

        Mirrors the batch M-step exactly: raw normalised prior counts and
        Laplace-smoothed, row-normalised confusion rows — so the refined
        fixed point is the batch fixed point.
        """
        total = self._prior_counts.sum()
        if total > 0:
            priors = self._prior_counts / total
        else:
            priors = np.full(len(self._labels), 1.0 / max(len(self._labels), 1))
        confusion = self._confusion_counts + self.smoothing
        confusion = confusion / confusion.sum(axis=2, keepdims=True)
        return priors, confusion

    def _e_step_item(
        self,
        votes: list[tuple[int, int]],
        priors: np.ndarray,
        confusion: np.ndarray,
    ) -> np.ndarray:
        """Posterior over labels for one item given the current model."""
        log_post = np.log(priors + 1e-300)
        for worker_idx, label_idx in votes:
            log_post = log_post + np.log(confusion[worker_idx, :, label_idx] + 1e-300)
        log_post -= log_post.max()
        posterior = np.exp(log_post)
        return posterior / posterior.sum()

    def _apply_contribution(
        self, item: Hashable, posterior: np.ndarray, sign: float
    ) -> None:
        """Add (+1) or remove (-1) one item's mass from the cached stats."""
        self._prior_counts += sign * posterior
        for worker_idx, label_idx in self._votes[item]:
            self._confusion_counts[worker_idx, :, label_idx] += sign * posterior

    # -- IncrementalAggregator ----------------------------------------------

    def update(self, item: Hashable, new_votes: Votes) -> None:
        if not new_votes:
            return
        encoded = [
            (self._worker_id(worker), self._label_id(answer))
            for worker, answer in new_votes
        ]
        known = item in self._votes
        if known:
            self._apply_contribution(item, self._posteriors[item], -1.0)
            self._votes[item].extend(encoded)
        else:
            self._votes[item] = list(encoded)

        if not known:
            # Seed a new item from its normalised vote shares — the same
            # symmetry-breaking initialisation as the batch aggregator.  An
            # E-step here would answer with the (still near-uniform early
            # on) confusion matrices and pin every posterior at the
            # uninformative fixed point.
            posterior = np.zeros(len(self._labels), dtype=np.float64)
            for _, label_idx in self._votes[item]:
                posterior[label_idx] += 1.0
            posterior /= posterior.sum()
        else:
            priors, confusion = self._current_estimates()
            e_post = self._e_step_item(self._votes[item], priors, confusion)
            if self.damping < 1.0:
                posterior = (1.0 - self.damping) * self._posteriors[item]
                posterior = posterior + self.damping * e_post
                posterior = posterior / posterior.sum()
            else:
                posterior = e_post
        self._posteriors[item] = posterior
        self._apply_contribution(item, posterior, +1.0)

    def decision(self, item: Hashable) -> Any:
        posterior = self._posterior_of(item)
        return self._labels[int(np.argmax(posterior))]

    def confidence(self, item: Hashable) -> float:
        posterior = self._posterior_of(item)
        return float(posterior.max())

    def _posterior_of(self, item: Hashable) -> np.ndarray:
        try:
            return self._posteriors[item]
        except KeyError:
            raise QualityControlError(f"no votes for item {item!r}") from None

    def refine(self) -> int:
        """Run full undamped EM sweeps until converged; return sweep count.

        This is the step that closes the gap between the damped streaming
        posteriors and the batch fixed point: each sweep recomputes the
        sufficient statistics exactly from the current posteriors (washing
        out any accumulated float drift) and then E-steps every item.
        """
        if not self._votes:
            return 0
        items = list(self._votes)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            num_labels = len(self._labels)
            prior_counts = np.zeros(num_labels, dtype=np.float64)
            confusion_counts = np.zeros(
                (len(self._workers), num_labels, num_labels), dtype=np.float64
            )
            for item in items:
                posterior = self._posteriors[item]
                prior_counts += posterior
                for worker_idx, label_idx in self._votes[item]:
                    confusion_counts[worker_idx, :, label_idx] += posterior
            self._prior_counts = prior_counts
            self._confusion_counts = confusion_counts
            priors, confusion = self._current_estimates()
            delta = 0.0
            for item in items:
                new_post = self._e_step_item(self._votes[item], priors, confusion)
                delta = max(delta, float(np.max(np.abs(new_post - self._posteriors[item]))))
                self._posteriors[item] = new_post
            if delta < self.tolerance:
                break
        # Leave the cached statistics consistent with the final posteriors.
        num_labels = len(self._labels)
        prior_counts = np.zeros(num_labels, dtype=np.float64)
        confusion_counts = np.zeros(
            (len(self._workers), num_labels, num_labels), dtype=np.float64
        )
        for item in items:
            posterior = self._posteriors[item]
            prior_counts += posterior
            for worker_idx, label_idx in self._votes[item]:
                confusion_counts[worker_idx, :, label_idx] += posterior
        self._prior_counts = prior_counts
        self._confusion_counts = confusion_counts
        self._refine_iterations = iterations
        return iterations

    def result(self, refine: bool = True) -> AggregationResult:
        if not self._votes:
            raise QualityControlError("no items to aggregate")
        if refine:
            self.refine()
        result = AggregationResult(
            method="em", iterations=self._refine_iterations
        )
        for item in self._votes:
            posterior = self._posteriors[item]
            best = int(np.argmax(posterior))
            result.decisions[item] = self._labels[best]
            result.confidences[item] = float(posterior[best])
        priors, confusion = self._current_estimates()
        for worker, j in self._worker_index.items():
            diagonal = np.diag(confusion[j])
            result.worker_quality[worker] = float(np.dot(priors, diagonal))
        return result
