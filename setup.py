"""Setup shim for environments without the ``wheel`` package.

Metadata lives in pyproject.toml; this file only enables legacy
(``pip install -e . --no-use-pep517``) editable installs on machines where
PEP 517 editable builds are unavailable.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="Reprowd: crowdsourced data processing made reproducible (reproduction)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
