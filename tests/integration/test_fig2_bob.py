"""Integration test for Figure 2: Bob's image-labeling experiment.

Bob labels three images, each assigned to three workers, and uses majority
vote to decide the final labels.  The test follows his code line by line and
then checks the table state the paper describes after each step.
"""

from __future__ import annotations

import pytest

from repro import CrowdContext
from repro.presenters import ImageLabelPresenter

BOB_IMAGES = [
    "http://img.example.org/bob/img1.jpg",
    "http://img.example.org/bob/img2.jpg",
    "http://img.example.org/bob/img3.jpg",
]
BOB_TRUTH = {BOB_IMAGES[0]: "Yes", BOB_IMAGES[1]: "No", BOB_IMAGES[2]: "Yes"}


@pytest.fixture
def bob_context(tmp_path):
    context = CrowdContext.with_sqlite(str(tmp_path / "bob.db"), seed=7)
    context.set_ground_truth(BOB_TRUTH.get)
    yield context
    context.close()


def run_bob_experiment(context):
    """Bob's five steps exactly as in Figure 2."""
    data = context.CrowdData(BOB_IMAGES, table_name="image_label")      # step 1
    data.set_presenter(ImageLabelPresenter(question="Is there a face?"))  # step 2
    data.publish_task(n_assignments=3)                                   # step 3
    data.get_result()                                                    # step 4
    data.mv()                                                            # step 5
    return data


class TestBobExperiment:
    def test_step1_table_has_id_and_object_columns(self, bob_context):
        data = bob_context.CrowdData(BOB_IMAGES, table_name="image_label")
        assert data.column("id") == [1, 2, 3]
        assert data.column("object") == BOB_IMAGES

    def test_step2_presenter_choice_leaves_table_unchanged(self, bob_context):
        data = bob_context.CrowdData(BOB_IMAGES, table_name="image_label")
        before = data.rows()
        data.set_presenter(ImageLabelPresenter())
        assert data.rows() == before

    def test_step3_adds_task_column(self, bob_context):
        data = bob_context.CrowdData(BOB_IMAGES, table_name="image_label")
        data.set_presenter(ImageLabelPresenter())
        data.publish_task(n_assignments=3)
        assert all(task is not None for task in data.column("task"))
        assert bob_context.client.statistics()["tasks"] == 3

    def test_step4_adds_result_column_with_three_answers_each(self, bob_context):
        data = run_bob_experiment(bob_context)
        for result in data.column("result"):
            assert result["complete"]
            assert len(result["assignments"]) == 3

    def test_step5_mv_column_and_its_quality(self, bob_context):
        data = run_bob_experiment(bob_context)
        mv = data.column("mv")
        assert len(mv) == 3
        assert set(mv) <= {"Yes", "No"}
        # The default pool is accurate enough that 3-vote MV on 3 images is
        # almost always perfect for this seed.
        assert mv == [BOB_TRUTH[url] for url in BOB_IMAGES]

    def test_persistent_columns_are_in_the_database(self, bob_context):
        data = run_bob_experiment(bob_context)
        assert data.cache.task_count() == 3
        assert data.cache.result_count() == 3
        # Derived columns (mv) are NOT persisted — they are recomputed.
        stored_tables = bob_context.engine.list_tables()
        assert "image_label::tasks" in stored_tables
        assert "image_label::results" in stored_tables
        assert not any("mv" in table for table in stored_tables)

    def test_whole_experiment_is_recorded_in_manipulation_log(self, bob_context):
        data = run_bob_experiment(bob_context)
        assert data.log.operations() == [
            "init", "set_presenter", "publish_task", "get_result", "quality_control",
        ]

    def test_experiment_is_deterministic_given_seed(self, tmp_path):
        def run(path):
            context = CrowdContext.with_sqlite(path, seed=7)
            context.set_ground_truth(BOB_TRUTH.get)
            data = run_bob_experiment(context)
            labels = data.column("mv")
            context.close()
            return labels

        assert run(str(tmp_path / "a.db")) == run(str(tmp_path / "b.db"))
