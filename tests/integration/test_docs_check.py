"""Tier-1 smoke of ``make docs-check``.

Keeps the documentation contract enforced on every test run: README.md and
docs/*.md must exist and be link-lint clean, and the quickstart example must
run headlessly and reproduce from its cache.  The checker module is loaded
by file path because tools/ is a script directory, not a package.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
CHECKER_PATH = REPO_ROOT / "tools" / "docs_check.py"


def load_checker():
    spec = importlib.util.spec_from_file_location("docs_check_smoke", CHECKER_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_documentation_set_exists():
    assert (REPO_ROOT / "README.md").exists()
    for page in ("architecture", "storage", "platform", "transport", "benchmarks"):
        assert (REPO_ROOT / "docs" / f"{page}.md").exists(), page


def test_links_are_clean():
    checker = load_checker()
    problems = []
    for doc_path in checker.iter_doc_files():
        problems.extend(checker.lint_links(doc_path))
    assert problems == []


def test_lint_catches_a_broken_link(tmp_path):
    checker = load_checker()
    bad = tmp_path / "bad.md"
    bad.write_text("see [missing](no/such/file.py) and [ok](https://example.org)")
    problems = checker.lint_links(str(bad))
    assert len(problems) == 1
    assert "no/such/file.py" in problems[0]


def test_docs_pages_are_cross_linked():
    checker = load_checker()
    assert checker.check_cross_links(checker.iter_doc_files()) == []


def test_cross_link_check_catches_an_orphan_page():
    checker = load_checker()
    # Pretend a docs page exists that nothing links to: check it against
    # the real set, which cannot reference it.
    orphan = str(REPO_ROOT / "docs" / "orphan-page-for-test.md")
    problems = checker.check_cross_links(checker.iter_doc_files() + [orphan])
    assert any("orphan" in problem for problem in problems)


def test_every_config_field_is_documented():
    checker = load_checker()
    assert checker.check_config_field_coverage(checker.iter_doc_files()) == []


def test_benchmark_catalogue_is_complete():
    checker = load_checker()
    assert checker.check_benchmark_catalogue() == []


def test_docs_check_passes_end_to_end():
    """The exact check `make docs-check` runs, quickstart included."""
    checker = load_checker()
    assert checker.main([]) == 0
