"""Integration test: a realistic end-to-end study combining every feature.

The scenario: a researcher labels an image collection with a spammer-heavy
crowd, using gold questions to qualify workers, adaptive redundancy to save
money, a hard budget as a safety net, and finally exports the artifact and
shares the database — all against one SQLite file, twice, to confirm the
whole pipeline is reproducible end to end.
"""

from __future__ import annotations

import json

import pytest

from repro import AdaptivePolicy, BudgetTracker, CrowdContext, ExperimentExporter
from repro.config import ReprowdConfig, StorageConfig, WorkerPoolConfig
from repro.datasets import make_image_label_dataset
from repro.presenters import ImageLabelPresenter
from repro.quality import GoldStandard, MajorityVoteAggregator, inject_gold

REAL = make_image_label_dataset(num_images=40, seed=41)
GOLD = make_image_label_dataset(num_images=8, seed=1041)
COMBINED, GOLD_POSITIONS = inject_gold(
    REAL.images, {url: GOLD.labels[url] for url in GOLD.images}, every=5
)


def ground_truth(obj):
    return REAL.ground_truth(obj) or GOLD.ground_truth(obj)


def run_study(db_path: str, budget: BudgetTracker) -> dict:
    """One full run of the study; returns its outputs."""
    config = ReprowdConfig(
        storage=StorageConfig(engine="sqlite", path=db_path),
        workers=WorkerPoolConfig(size=20, mean_accuracy=0.85, spammer_fraction=0.3, seed=41),
    )
    cc = CrowdContext(config=config, ground_truth=ground_truth, budget=budget)
    policy = AdaptivePolicy(initial_assignments=2, max_assignments=6, confidence_threshold=0.75)
    data = (
        cc.CrowdData(COMBINED, "full_pipeline")
        .set_presenter(ImageLabelPresenter(question="Does the image match?"))
        .publish_task(n_assignments=policy.initial_assignments)
        .get_result_adaptive(policy)
    )
    votes = {
        index: [(a["worker_id"], a["answer"]) for a in row["assignments"]]
        for index, row in enumerate(data.column("result"))
    }
    gold = GoldStandard(GOLD_POSITIONS, pass_threshold=0.6, min_gold_answers=2)
    report = gold.evaluate(votes)
    cleaned = MajorityVoteAggregator().aggregate(gold.filter_votes(votes, report))
    objects = data.column("object")
    real_truth = {
        index: REAL.labels[obj] for index, obj in enumerate(objects) if obj in REAL.labels
    }
    outputs = {
        "labels": {index: cleaned.decisions[index] for index in real_truth},
        "accuracy": cleaned.accuracy_against(real_truth),
        "flagged_workers": report.failed_workers,
        "tasks_published": cc.client.statistics()["tasks"],
        "spend": budget.spent,
        "export": ExperimentExporter(data).to_dict(),
    }
    cc.close()
    return outputs


class TestFullPipeline:
    def test_study_runs_and_reproduces(self, tmp_path):
        db_path = str(tmp_path / "study.db")

        first = run_study(db_path, BudgetTracker(price_per_assignment=0.02, budget=50.0))
        assert first["tasks_published"] == len(COMBINED)
        assert first["accuracy"] >= 0.8
        assert first["spend"] > 0
        assert len(first["export"]["lineage"]) >= 2 * len(COMBINED)

        # The rerun (fresh budget, fresh platform) publishes nothing and
        # reproduces the same labels and the same flagged-worker set.
        second = run_study(db_path, BudgetTracker(price_per_assignment=0.02, budget=50.0))
        assert second["tasks_published"] == 0
        assert second["spend"] == 0.0
        assert second["labels"] == first["labels"]
        assert second["flagged_workers"] == first["flagged_workers"]

    def test_exported_artifact_is_self_contained(self, tmp_path):
        db_path = str(tmp_path / "artifact.db")
        outputs = run_study(db_path, BudgetTracker(price_per_assignment=0.02))
        artifact_path = str(tmp_path / "artifact.json")
        with open(artifact_path, "w", encoding="utf-8") as handle:
            json.dump(outputs["export"], handle, default=repr)
        with open(artifact_path, encoding="utf-8") as handle:
            artifact = json.load(handle)
        # The artifact alone answers the paper's examination questions.
        assert artifact["table"] == "full_pipeline"
        assert {record["worker_id"] for record in artifact["lineage"]}
        assert [m["operation"] for m in artifact["manipulations"]][0] == "init"
        assert artifact["cache"]["cached_results"] == len(COMBINED)

    def test_budget_too_small_fails_then_resumes(self, tmp_path):
        from repro.core.budget import BudgetExceededError

        db_path = str(tmp_path / "resume.db")
        # 2 assignments x 48 tasks = 96 assignments needed; allow only 50.
        tight = BudgetTracker(price_per_assignment=0.02, budget=1.00)
        with pytest.raises(BudgetExceededError):
            run_study(db_path, tight)
        partially_published = tight.total_assignments()
        assert 0 < partially_published <= 50

        # With a bigger budget the study completes, paying only for what the
        # first attempt did not already publish.
        generous = BudgetTracker(price_per_assignment=0.02, budget=50.0)
        outputs = run_study(db_path, generous)
        assert outputs["accuracy"] >= 0.8
        total_assignments = generous.total_assignments() + partially_published
        # Everything was paid for exactly once across the two attempts
        # (adaptive top-ups belong to the successful attempt).
        assert total_assignments >= len(COMBINED) * 2
