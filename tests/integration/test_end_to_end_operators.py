"""End-to-end integration tests: operators inherit sharable/examinable for free.

The paper's central claim about CrowdData is that algorithms implemented on
top of it (the two crowdsourced join algorithms, and by extension the other
operators) are automatically sharable and examinable.  These tests run whole
operator workflows against a shared database and check both properties.
"""

from __future__ import annotations

import shutil

import pytest

from repro import CrowdContext
from repro.datasets import make_entity_resolution_dataset, make_image_label_dataset
from repro.operators import CrowdDedup, CrowdFilter, CrowdJoin, TransitiveCrowdJoin
from repro.simulation import pair_metrics


@pytest.fixture
def er():
    return make_entity_resolution_dataset(num_entities=10, duplicates_per_entity=3, seed=23)


class TestJoinSharability:
    def test_ally_reruns_bob_join_without_crowd_work(self, tmp_path, er):
        bob_db = str(tmp_path / "bob_join.db")
        bob_ctx = CrowdContext.with_sqlite(bob_db, seed=23)
        bob_result = CrowdJoin(bob_ctx, "er_join").join(
            er.records, ground_truth=er.pair_ground_truth
        )
        bob_ctx.close()

        ally_db = str(tmp_path / "ally_join.db")
        shutil.copy2(bob_db, ally_db)
        ally_ctx = CrowdContext.with_sqlite(ally_db, seed=99)
        ally_result = CrowdJoin(ally_ctx, "er_join").join(
            er.records, ground_truth=er.pair_ground_truth
        )
        assert ally_result.matches == bob_result.matches
        assert ally_ctx.client.statistics()["tasks"] == 0
        ally_ctx.close()

    def test_join_examinable_through_crowddata(self, er):
        ctx = CrowdContext.in_memory(seed=23)
        result = TransitiveCrowdJoin(ctx, "er_join").join(
            er.records, ground_truth=er.pair_ground_truth
        )
        crowddata = result.crowddata
        # Manipulation history shows the incremental rounds.
        operations = crowddata.log.operations()
        assert operations.count("publish_task") == result.report.rounds
        # Lineage attributes every answer to a worker.
        lineage = crowddata.lineage()
        assert len(lineage) == result.report.crowd_answers
        assert lineage.worker_contributions()
        ctx.close()

    def test_transitive_join_cheaper_same_shape(self, er):
        plain = CrowdJoin(CrowdContext.in_memory(seed=23), "plain").join(
            er.records, ground_truth=er.pair_ground_truth
        )
        transitive = TransitiveCrowdJoin(CrowdContext.in_memory(seed=23), "trans").join(
            er.records, ground_truth=er.pair_ground_truth
        )
        plain_metrics = pair_metrics(plain.matches, er.matching_pairs)
        transitive_metrics = pair_metrics(transitive.matches, er.matching_pairs)
        assert transitive.report.crowd_tasks <= plain.report.crowd_tasks
        assert abs(plain_metrics["f1"] - transitive_metrics["f1"]) <= 0.15


class TestFilterAndDedupPipelines:
    def test_filter_then_dedup_pipeline(self, tmp_path):
        """A two-stage pipeline sharing one context and one database file."""
        images = make_image_label_dataset(num_images=12, seed=29)
        er = make_entity_resolution_dataset(num_entities=6, duplicates_per_entity=2, seed=29)
        ctx = CrowdContext.with_sqlite(str(tmp_path / "pipeline.db"), seed=29)

        filter_result = CrowdFilter(ctx, "stage1_filter").filter(
            images.images, ground_truth=images.ground_truth
        )
        dedup_result = CrowdDedup(ctx, "stage2_dedup").dedup(
            er.records, ground_truth=er.pair_ground_truth
        )
        assert len(filter_result.kept) + len(filter_result.rejected) == len(images.images)
        assert dedup_result.num_entities() >= 1
        assert set(ctx.show_tables()) >= {"stage1_filter", "stage2_dedup"}
        ctx.close()

    def test_rerunning_pipeline_is_free(self, tmp_path):
        images = make_image_label_dataset(num_images=10, seed=31)
        db = str(tmp_path / "rerun.db")

        def run():
            ctx = CrowdContext.with_sqlite(db, seed=31)
            result = CrowdFilter(ctx, "filter").filter(
                images.images, ground_truth=images.ground_truth
            )
            stats = ctx.client.statistics()
            ctx.close()
            return result.kept, stats

        first_kept, first_stats = run()
        second_kept, second_stats = run()
        assert first_kept == second_kept
        assert first_stats["tasks"] == len(images.images)
        assert second_stats["tasks"] == 0
