"""Integration test: the full share-and-inspect workflow through the CLI.

Bob runs an experiment and hands Ally only the database file; Ally inspects it
entirely from the command line (no Python code) and then continues the
experiment programmatically.  One test drives the real ``python -m repro``
entry point in a subprocess to make sure the packaging-level wiring works.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro import CrowdContext
from repro.cli import main as cli_main
from repro.datasets import make_image_label_dataset
from repro.presenters import ImageLabelPresenter

DATASET = make_image_label_dataset(num_images=12, seed=31)


@pytest.fixture
def bob_db(tmp_path):
    db_path = str(tmp_path / "bob_cli.db")
    cc = CrowdContext.with_sqlite(db_path, seed=31, ground_truth=DATASET.ground_truth)
    (
        cc.CrowdData(DATASET.images, "cli_experiment")
        .set_presenter(ImageLabelPresenter())
        .publish_task(n_assignments=3)
        .get_result()
        .mv()
    )
    cc.close()
    return db_path


class TestCliWorkflow:
    def test_inspect_then_continue(self, bob_db, tmp_path, capsys):
        # Ally lists the tables and reads the history from the CLI.
        assert cli_main(["tables", bob_db]) == 0
        assert "cli_experiment" in capsys.readouterr().out
        assert cli_main(["lineage", bob_db, "cli_experiment"]) == 0
        lineage = json.loads(capsys.readouterr().out)
        assert lineage["answers"] == len(DATASET) * 3

        # She exports the raw answers for her paper's artifact appendix.
        export_path = str(tmp_path / "artifact.json")
        assert cli_main(["export", bob_db, "cli_experiment", export_path]) == 0
        with open(export_path, encoding="utf-8") as handle:
            artifact = json.load(handle)
        assert artifact["summary"]["cached_results"] == len(DATASET)

        # Then she continues the experiment in Python — still zero new tasks
        # for Bob's rows.
        cc = CrowdContext.with_sqlite(bob_db, seed=99, ground_truth=DATASET.ground_truth)
        data = (
            cc.CrowdData(DATASET.images, "cli_experiment")
            .set_presenter(ImageLabelPresenter())
            .publish_task(n_assignments=3)
            .get_result()
            .em()
        )
        assert cc.client.statistics()["tasks"] == 0
        assert len(data.column("em")) == len(DATASET)
        cc.close()

    def test_python_dash_m_entry_point(self, bob_db):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "describe", bob_db],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        payload = json.loads(completed.stdout)
        assert payload[0]["table"] == "cli_experiment"
        assert payload[0]["cached_tasks"] == len(DATASET)
