"""Cross-process wire cluster tests: real sockets, real server processes.

The unit suites prove the wire protocol and the store's multi-writer
atomics in-process; this suite is the acceptance gate of PR 6's tentpole —
``python -m repro.platform.wire`` server *processes* spawned over real TCP:

* a spawned server serves the exact same workflow a direct in-process
  client runs (parity);
* SIGKILL mid-experiment maps to ``PlatformUnavailableError`` and a fresh
  server on the same durable store resumes exactly-once;
* two servers sharing one durable store stay exactly-once while N client
  *processes* publish the same dedup keys concurrently.

Run just this suite with ``make test-wire`` (marker: ``wire``).
"""

from __future__ import annotations

import multiprocessing
import os
import random

import pytest

from repro.config import PlatformConfig
from repro.exceptions import PlatformUnavailableError
from repro.platform.client import PlatformClient
from repro.platform.server import PlatformServer
from repro.platform.wire import WireClient, spawn_server
from repro.workers.pool import WorkerPool

pytestmark = pytest.mark.wire

SEED = 23
POOL_SIZE = 12
ACCURACY = 0.95


def make_specs(prefix: str, count: int, n_assignments: int = 1) -> list[dict]:
    return [
        {
            "info": {"url": f"{prefix}-{i}", "_true_answer": "Yes"},
            "n_assignments": n_assignments,
            "dedup_key": f"{prefix}-{i}",
        }
        for i in range(count)
    ]


def run_workflow(client: PlatformClient, project_name: str) -> dict:
    """The canonical publish → simulate → collect workflow, summarised."""
    project = client.create_project(project_name)
    tasks = client.create_tasks(project.project_id, make_specs("obj", 12, 2))
    created = client.simulate_work(project_id=project.project_id)
    runs = client.get_task_runs_for_project(project.project_id)
    return {
        "project_id": project.project_id,
        "task_ids": [task.task_id for task in tasks],
        "created": created,
        "answers": {
            task_id: sorted((run.worker_id, run.answer) for run in task_runs)
            for task_id, task_runs in runs.items()
        },
    }


class TestSpawnedServer:
    def test_spawned_server_matches_direct_client_exactly(self):
        pool = WorkerPool.uniform(POOL_SIZE, ACCURACY, seed=SEED)
        direct = PlatformClient(
            PlatformServer(worker_pool=pool, config=PlatformConfig(seed=SEED))
        )
        expected = run_workflow(direct, "parity")
        direct.close()

        handle = spawn_server(seed=SEED, pool_size=POOL_SIZE, accuracy=ACCURACY)
        with handle:
            client = WireClient(handle.host, handle.port)
            try:
                actual = run_workflow(client, "parity")
            finally:
                client.close()
        # Same seeds, same pool, same verbs — the socket must be invisible:
        # identical ids, identical workers, identical answers.
        assert actual == expected

    def test_kill_is_unavailable_then_restart_resumes_exactly_once(self, tmp_path):
        db = str(tmp_path / "cluster.db")
        specs = make_specs("obj", 8)
        handle = spawn_server(db=db, seed=SEED, pool_size=POOL_SIZE, accuracy=ACCURACY)
        # Seeded jitter: the retry delays (and so the test's wall-clock) are
        # exactly reproducible run to run — this suite must never flake on
        # timing.
        client = WireClient(
            handle.host,
            handle.port,
            max_retries=2,
            retry_backoff=0.01,
            retry_jitter=random.Random(SEED).random,
        )
        project = client.create_project("kill-me")
        first = client.create_tasks(project.project_id, specs)
        handle.kill()
        assert not handle.alive()
        with pytest.raises(PlatformUnavailableError):
            client.list_tasks(project.project_id)
        client.close()

        restarted = spawn_server(
            db=db, seed=SEED, pool_size=POOL_SIZE, accuracy=ACCURACY
        )
        with restarted:
            client = WireClient(restarted.host, restarted.port)
            try:
                # The replayed publish resolves every dedup key to the task
                # the dead server created: same ids, nothing re-purchased.
                replayed = client.create_tasks(project.project_id, specs)
                assert [t.task_id for t in replayed] == [t.task_id for t in first]
                assert len(client.list_tasks(project.project_id)) == len(specs)
            finally:
                client.close()


# -- N-process contention ----------------------------------------------------

CLIENT_PROCESSES = 4
SHARED_TASKS = 15
PRIVATE_TASKS = 10


def _contend(index: int, addresses: list[tuple[str, int]], queue) -> None:
    """One client process: race the shared publish, then publish own keys."""
    host, port = addresses[index % len(addresses)]
    client = WireClient(
        host,
        port,
        max_retries=8,
        retry_backoff=0.05,
        retry_jitter=random.Random(1000 + index).random,
    )
    try:
        project = client.create_project("contended")
        shared = client.create_tasks(
            project.project_id, make_specs("shared", SHARED_TASKS)
        )
        private = client.create_tasks(
            project.project_id, make_specs(f"private-{index}", PRIVATE_TASKS)
        )
        queue.put(
            {
                "index": index,
                "project_id": project.project_id,
                "shared_ids": [task.task_id for task in shared],
                "private_ids": [task.task_id for task in private],
            }
        )
    except BaseException as exc:  # noqa: BLE001 - surfaced by the parent
        queue.put({"index": index, "error": repr(exc)})
    finally:
        client.close()


class TestTwoServerContention:
    def test_n_client_processes_two_servers_exactly_once(self, tmp_path):
        db = str(tmp_path / "contended.db")
        servers = [
            spawn_server(
                db=db,
                seed=SEED,
                pool_size=POOL_SIZE,
                accuracy=ACCURACY,
                shared=True,
            )
            for _ in range(2)
        ]
        try:
            addresses = [(handle.host, handle.port) for handle in servers]
            context = multiprocessing.get_context("fork")
            queue = context.Queue()
            processes = [
                context.Process(target=_contend, args=(i, addresses, queue))
                for i in range(CLIENT_PROCESSES)
            ]
            for process in processes:
                process.start()
            results = [queue.get(timeout=120) for _ in processes]
            for process in processes:
                process.join(timeout=30)
            errors = [r for r in results if "error" in r]
            assert not errors, errors

            # Every process converged on one project...
            project_ids = {r["project_id"] for r in results}
            assert len(project_ids) == 1
            # ...and on the same task per shared dedup key, whichever
            # server it talked to.
            shared_lists = {tuple(r["shared_ids"]) for r in results}
            assert len(shared_lists) == 1
            shared_ids = set(results[0]["shared_ids"])
            assert len(shared_ids) == SHARED_TASKS
            # Private batches are disjoint from each other and from the
            # shared batch — no id is ever handed out twice.
            all_ids = list(shared_ids)
            for r in results:
                all_ids.extend(r["private_ids"])
            assert len(all_ids) == len(set(all_ids))

            # Both servers agree on the final task census.
            expected_total = SHARED_TASKS + CLIENT_PROCESSES * PRIVATE_TASKS
            for host, port in addresses:
                client = WireClient(host, port)
                try:
                    tasks = client.list_tasks(results[0]["project_id"])
                    assert len(tasks) == expected_total
                    assert sorted(t.task_id for t in tasks) == sorted(set(all_ids))
                finally:
                    client.close()
        finally:
            for handle in servers:
                handle.stop()
        assert os.path.exists(db)  # the artifact the cluster shares
