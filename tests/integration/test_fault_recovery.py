"""Integration tests for the crash-and-rerun (sharable) guarantee.

"The system guarantees that any manipulation of CrowdData is fault recovery.
That is, when the program is crashed, rerunning the program is as if it has
never crashed."  These tests crash Bob's experiment at many points — while
publishing, while collecting, while aggregating — and assert that the final
rerun produces exactly the uninterrupted result and that the total number of
crowd tasks ever published equals the number an uninterrupted run publishes.

The durable cache is parametrised over every partitioning scheme (single
sqlite file, modulo-sharded, consistent-hash ring at R=1 and R=2), one
scenario grows the ring *between* publish and collect, and the replica
scenarios SIGKILL a ring member there instead (including mid-rebalance) —
neither the elastic-scale story nor the availability story may cost a
single re-published task.
"""

from __future__ import annotations

import pytest

from repro import CrowdContext
from repro.config import PlatformConfig, WorkerPoolConfig
from repro.datasets import make_image_label_dataset
from repro.exceptions import CrashInjected
from repro.platform.client import PipelinedClient, PlatformClient
from repro.platform.server import PlatformServer
from repro.platform.wire import WireClient, WireServer
from repro.presenters import ImageLabelPresenter
from repro.simulation import CrashPlan, CrashingEngine
from repro.storage import ConsistentHashEngine, SqliteEngine
from repro.storage.testing import build_child_engine, build_engine
from repro.workers.pool import WorkerPool

#: The crash-surviving cache backends every scenario must behave on.
DURABLE_CACHE_BACKENDS = ("sqlite", "sharded", "ring", "ring-r2")


@pytest.fixture
def dataset():
    return make_image_label_dataset(num_images=15, seed=17)


@pytest.fixture(params=DURABLE_CACHE_BACKENDS)
def durable_cache(request, tmp_path):
    """Factory building named crash-surviving cache engines of one backend;
    building the same name twice reopens the same durable data."""

    def make(name: str):
        return build_engine(request.param, tmp_path / f"cache-{name}")

    make.backend = request.param
    return make


def make_client(kind: str, seed: int = 17) -> PlatformClient:
    """A fresh platform client of the requested transport *kind*."""
    pool = WorkerPool.from_config(WorkerPoolConfig(size=20, mean_accuracy=0.95, seed=seed))
    server = PlatformServer(worker_pool=pool, config=PlatformConfig(seed=seed))
    if kind == "pipelined":
        # A small batch size forces real in-flight sub-batches even at the
        # 15-row scale of these experiments.
        return PipelinedClient(server, batch_size=4, max_in_flight=3)
    if kind == "wire":
        # A real TCP boundary in front of the same platform: every crash
        # scenario must replay identically when each verb crosses a socket.
        wire = WireServer(server)
        wire.start()
        client = WireClient(wire.host, wire.port)
        client._test_wire_server = wire  # torn down by the fixture
        return client
    return PlatformClient(server)


@pytest.fixture(params=["direct", "pipelined", "wire"])
def durable_platform(dataset, request):
    """A platform that outlives program crashes (PyBossa keeps running when
    Bob's script dies) — exercised over the serial, pipelined and wire
    clients, which must survive every crash point identically."""
    client = make_client(request.param)
    yield client
    client.close()  # tear down the async transport's worker threads
    wire = getattr(client, "_test_wire_server", None)
    if wire is not None:
        wire.stop()


def bob_experiment(engine, client, dataset):
    """Bob's experiment parametrised by the storage engine and client."""
    context = CrowdContext(engine=engine, client=client, ground_truth=dataset.ground_truth)
    data = context.CrowdData(dataset.images, "crashable")
    data.set_presenter(ImageLabelPresenter())
    data.publish_task(n_assignments=3)
    data.get_result()
    data.mv()
    return data.column("mv")


class TestCrashAndRerun:
    def test_uninterrupted_baseline(self, tmp_path, dataset, durable_platform):
        engine = SqliteEngine(str(tmp_path / "baseline.db"))
        labels = bob_experiment(engine, durable_platform, dataset)
        assert len(labels) == len(dataset)
        engine.close()

    @pytest.mark.parametrize("crash_after", [1, 3, 7, 12, 20, 31])
    def test_crash_then_rerun_matches_uninterrupted_run(
        self, tmp_path, dataset, durable_platform, durable_cache, crash_after
    ):
        # Reference run on its own platform/database.
        reference_engine = SqliteEngine(str(tmp_path / "reference.db"))
        reference_pool = WorkerPool.from_config(
            WorkerPoolConfig(size=20, mean_accuracy=0.95, seed=17)
        )
        reference_client = PlatformClient(
            PlatformServer(worker_pool=reference_pool, config=PlatformConfig(seed=17))
        )
        expected = bob_experiment(reference_engine, reference_client, dataset)
        reference_engine.close()

        # Crashing run: same durable cache across attempts (sqlite, sharded
        # or ring — the guarantee is backend-agnostic), same durable platform.
        durable = durable_cache("crashy")
        crashed = False
        try:
            bob_experiment(
                CrashingEngine(durable, CrashPlan(crash_after_writes=crash_after)),
                durable_platform,
                dataset,
            )
        except CrashInjected:
            crashed = True
        # Rerun after the crash (no crash plan this time).
        labels = bob_experiment(durable, durable_platform, dataset)
        assert labels == expected
        # No duplicate tasks were ever published: the platform has exactly
        # one task per image, regardless of where the crash hit.
        assert durable_platform.statistics()["tasks"] == len(dataset)
        assert crashed  # every chosen crash point is below the total write count
        durable.close()

    def test_many_successive_crashes_still_converge(self, tmp_path, dataset, durable_platform):
        durable = SqliteEngine(str(tmp_path / "multi_crash.db"))
        crash_points = [2, 4, 6, 9, 13, 18, 25, 33]
        crashes = 0
        for crash_after in crash_points:
            try:
                bob_experiment(
                    CrashingEngine(durable, CrashPlan(crash_after_writes=crash_after)),
                    durable_platform,
                    dataset,
                )
            except CrashInjected:
                crashes += 1
        labels = bob_experiment(durable, durable_platform, dataset)
        assert len(labels) == len(dataset)
        assert durable_platform.statistics()["tasks"] == len(dataset)
        assert crashes >= len(crash_points) - 2

    def test_crash_between_publish_and_collect(
        self, dataset, durable_platform, durable_cache
    ):
        """Crash exactly after all tasks are published but before any result
        is persisted, then rerun — on every durable cache backend."""
        durable = durable_cache("between")

        def publish_only(engine):
            context = CrowdContext(
                engine=engine, client=durable_platform, ground_truth=dataset.ground_truth
            )
            data = context.CrowdData(dataset.images, "crashable")
            data.set_presenter(ImageLabelPresenter())
            data.publish_task(n_assignments=3)
            raise CrashInjected("after publish")

        with pytest.raises(CrashInjected):
            publish_only(durable)
        labels = bob_experiment(durable, durable_platform, dataset)
        assert len(labels) == len(dataset)
        assert durable_platform.statistics()["tasks"] == len(dataset)
        durable.close()

    @pytest.mark.ring
    def test_ring_rebalance_between_publish_and_collect(
        self, tmp_path, dataset, durable_platform
    ):
        """Grow the ring-backed cache from 3 to 4 members after publishing
        but before collecting: the migrated cache must keep serving the
        published task ids, so collection completes without re-publishing a
        single task and the labels match an engine that never rebalanced."""
        reference_engine = SqliteEngine(str(tmp_path / "reference.db"))
        reference_client = PlatformClient(
            PlatformServer(
                worker_pool=WorkerPool.from_config(
                    WorkerPoolConfig(size=20, mean_accuracy=0.95, seed=17)
                ),
                config=PlatformConfig(seed=17),
            )
        )
        expected = bob_experiment(reference_engine, reference_client, dataset)
        reference_engine.close()

        durable = ConsistentHashEngine(
            {
                f"ring-{i:02d}": SqliteEngine(str(tmp_path / f"ring-{i:02d}.db"))
                for i in range(3)
            },
            virtual_nodes=16,
        )
        context = CrowdContext(
            engine=durable, client=durable_platform, ground_truth=dataset.ground_truth
        )
        data = context.CrowdData(dataset.images, "crashable")
        data.set_presenter(ImageLabelPresenter())
        data.publish_task(n_assignments=3)
        published = durable_platform.statistics()["tasks"]
        assert published == len(dataset)

        report = durable.rebalance(
            add={"ring-03": SqliteEngine(str(tmp_path / "ring-03.db"))}
        )
        assert report["keys_moved"] > 0  # the cache really was redistributed

        labels = bob_experiment(durable, durable_platform, dataset)
        assert labels == expected
        assert durable_platform.statistics()["tasks"] == published  # no re-publish
        durable.close()

    @pytest.mark.ring
    @pytest.mark.replica
    @pytest.mark.parametrize("kind", ["memory", "sqlite"])
    @pytest.mark.parametrize("victim", ["ring-00", "ring-01", "ring-02"])
    def test_kill_any_member_between_publish_and_collect(
        self, tmp_path, dataset, kind, victim
    ):
        """R=2 replication is the availability story: SIGKILL *any single*
        member of the replicated cache between publish and collect and the
        experiment finishes as if nothing happened — same labels, not one
        re-published task, and every cache table byte-identical to a run
        that never lost a member."""

        def publish_then_finish(engine, kill=None):
            """Publish, optionally kill a ring member, then run the full
            experiment to completion — identical op sequence either way."""
            client = make_client("direct")
            context = CrowdContext(
                engine=engine, client=client, ground_truth=dataset.ground_truth
            )
            data = context.CrowdData(dataset.images, "crashable")
            data.set_presenter(ImageLabelPresenter())
            data.publish_task(n_assignments=3)
            assert client.statistics()["tasks"] == len(dataset)
            if kill is not None:
                kill()
            labels = bob_experiment(engine, client, dataset)
            assert client.statistics()["tasks"] == len(dataset)  # no re-publish
            return labels

        reference_engine = SqliteEngine(str(tmp_path / "reference.db"))
        expected = publish_then_finish(reference_engine)
        cache_tables = [
            name
            for name in reference_engine.list_tables()
            if name.startswith("crashable::")
        ]
        expected_scan = {
            name: [
                (r.key, r.value, r.version) for r in reference_engine.scan(name)
            ]
            for name in cache_tables
        }
        reference_engine.close()

        durable = ConsistentHashEngine(
            {
                name: build_child_engine(kind, tmp_path / "ring", name)
                for name in ("ring-00", "ring-01", "ring-02")
            },
            virtual_nodes=16,
            replicas=2,
        )
        # SIGKILL between publish and collect: the child is abandoned.
        labels = publish_then_finish(durable, kill=lambda: durable.mark_down(victim))
        assert labels == expected
        assert {
            name: [(r.key, r.value, r.version) for r in durable.scan(name)]
            for name in cache_tables
        } == expected_scan
        durable.close()

    @pytest.mark.ring
    @pytest.mark.replica
    def test_kill_member_mid_rebalance_between_publish_and_collect(
        self, tmp_path, dataset
    ):
        """The compound failure: the ring is growing from 3 to 4 members
        between publish and collect when one of the old members dies in the
        middle of a migration wave.  The transition must complete on the
        survivors and collection must not re-publish a single task."""
        reference_engine = SqliteEngine(str(tmp_path / "reference.db"))
        expected = bob_experiment(reference_engine, make_client("direct"), dataset)
        reference_engine.close()

        durable = ConsistentHashEngine(
            {
                f"ring-{i:02d}": SqliteEngine(str(tmp_path / f"ring-{i:02d}.db"))
                for i in range(3)
            },
            virtual_nodes=16,
            replicas=2,
        )
        client = make_client("direct")
        context = CrowdContext(
            engine=durable, client=client, ground_truth=dataset.ground_truth
        )
        data = context.CrowdData(dataset.images, "crashable")
        data.set_presenter(ImageLabelPresenter())
        data.publish_task(n_assignments=3)
        published = client.statistics()["tasks"]

        killed = {"done": False}

        def kill_mid_wave(event):
            if not killed["done"] and event.startswith("copy:"):
                killed["done"] = True
                durable.mark_down("ring-01")

        durable.rebalance(
            add={"ring-03": SqliteEngine(str(tmp_path / "ring-03.db"))},
            on_event=kill_mid_wave,
        )
        assert killed["done"]
        assert durable.down_members == ["ring-01"]

        labels = bob_experiment(durable, client, dataset)
        assert labels == expected
        assert client.statistics()["tasks"] == published  # no re-publish
        durable.close()

    def test_platform_redeployment_self_heals(self, tmp_path, dataset):
        """If the platform loses its tasks between runs (redeployment), the
        cached task ids are stale; the rerun republishes and still finishes."""
        durable = SqliteEngine(str(tmp_path / "redeploy.db"))
        first_pool = WorkerPool.from_config(WorkerPoolConfig(size=20, seed=17))
        first_client = PlatformClient(
            PlatformServer(worker_pool=first_pool, config=PlatformConfig(seed=17))
        )

        def publish_only(engine, client):
            context = CrowdContext(engine=engine, client=client, ground_truth=dataset.ground_truth)
            data = context.CrowdData(dataset.images, "crashable")
            data.set_presenter(ImageLabelPresenter())
            data.publish_task(n_assignments=3)

        publish_only(durable, first_client)
        # The platform is redeployed: a brand-new empty server.
        second_pool = WorkerPool.from_config(WorkerPoolConfig(size=20, seed=18))
        second_client = PlatformClient(
            PlatformServer(worker_pool=second_pool, config=PlatformConfig(seed=18))
        )
        labels = bob_experiment(durable, second_client, dataset)
        assert len(labels) == len(dataset)
        durable.close()
