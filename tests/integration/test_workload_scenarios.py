"""Scenario-harness integration tier: replay determinism, chaos, transports.

The central guarantee under test: a :class:`ScenarioSpec` is a pure
function from seed to bytes.  Running the same spec twice — or on a
different storage backend, a different transport, or a ring that loses a
member and rebalances mid-run — must produce byte-identical event logs,
collected answers and metrics reports (only the ``timing`` section may
differ, and it is excluded from the canonical encodings).
"""

from __future__ import annotations

import json

import pytest

from repro.core.budget import BudgetExceededError
from repro.storage.sqlite_engine import SqliteEngine
from repro.workload import ScenarioRunner, ScenarioSpec, SpammerWave

pytestmark = pytest.mark.workload


def strip_backend(result) -> dict:
    """The report minus its spec echo (backends legitimately differ there)."""
    report = json.loads(result.canonical_report)
    report.pop("scenario")
    return report


@pytest.fixture
def runner(tmp_path):
    return ScenarioRunner(str(tmp_path))


BASE = ScenarioSpec(
    name="replay",
    seed=29,
    arrival="diurnal",
    rate=4.0,
    num_tasks=80,
    batch_size=25,
    num_keys=60,
    zipf_skew=0.9,
    pool_size=14,
    redundancy=3,
    straggler_fraction=0.1,
    storage="sqlite",
)


class TestReplayDeterminism:
    def test_same_spec_twice_is_byte_identical_on_sqlite(self, runner):
        first = runner.run(BASE)
        second = runner.run(BASE)
        assert first.run_dir != second.run_dir  # fresh dirs: a true replay
        assert first.canonical_events == second.canonical_events
        assert first.canonical_collected == second.canonical_collected
        assert first.canonical_report == second.canonical_report

    @pytest.mark.ring
    def test_same_spec_twice_is_byte_identical_on_ring(self, runner):
        spec = BASE.with_backend("ring", replicas=2)
        first = runner.run(spec)
        second = runner.run(spec)
        assert first.canonical_events == second.canonical_events
        assert first.canonical_collected == second.canonical_collected
        assert first.canonical_report == second.canonical_report

    @pytest.mark.ring
    def test_every_backend_produces_the_sqlite_bytes(self, runner):
        reference = runner.run(BASE)
        for spec in (
            BASE.with_backend("memory"),
            BASE.with_backend("sharded"),
            BASE.with_backend("ring", replicas=2),
            BASE.with_backend("sqlite", transport="pipelined"),
        ):
            other = runner.run(spec)
            assert other.canonical_events == reference.canonical_events, spec.storage
            assert (
                other.canonical_collected == reference.canonical_collected
            ), spec.storage
            assert strip_backend(other) == strip_backend(reference), spec.storage

    def test_durable_platform_with_group_commit_matches(self, runner):
        from dataclasses import replace

        reference = runner.run(BASE)
        durable = runner.run(
            replace(BASE, durable_platform=True, group_commit=True)
        )
        assert durable.canonical_collected == reference.canonical_collected
        assert strip_backend(durable) == strip_backend(reference)

    def test_different_seed_different_bytes(self, runner):
        from dataclasses import replace

        first = runner.run(BASE)
        second = runner.run(replace(BASE, seed=BASE.seed + 1))
        assert first.canonical_collected != second.canonical_collected


class TestScenarioChaos:
    """Satellite: skewed-key bursty workload on ring R=2, member killed and
    rebalanced mid-run — bytes must match the sqlite reference."""

    CHAOS = ScenarioSpec(
        name="chaos",
        seed=31,
        arrival="bursty",
        rate=4.0,
        burst_multiplier=10.0,
        burst_every_seconds=40.0,
        burst_duration_seconds=4.0,
        num_tasks=120,
        batch_size=20,
        num_keys=80,
        zipf_skew=1.2,
        pool_size=12,
        storage="ring",
        storage_shards=3,
        replicas=2,
    )

    @pytest.mark.ring
    @pytest.mark.replica
    def test_member_kill_and_rebalance_mid_run_matches_sqlite(
        self, runner, tmp_path
    ):
        fired = []

        def chaos(context, batch_index):
            if batch_index == 1:
                context.engine.mark_down("ring-01")
                fired.append("kill")
            elif batch_index == 3:
                context.engine.rebalance(
                    add={"ring-90": SqliteEngine(str(tmp_path / "ring-90.db"))}
                )
                fired.append("rebalance")

        chaotic = runner.run(self.CHAOS, on_batch=chaos)
        assert fired == ["kill", "rebalance"]
        reference = runner.run(self.CHAOS.with_backend("sqlite", replicas=1))
        assert chaotic.canonical_collected == reference.canonical_collected
        assert chaotic.canonical_events == reference.canonical_events
        assert strip_backend(chaotic) == strip_backend(reference)
        # The skew actually skewed: fewer unique tasks than arrivals.
        workload = chaotic.report["workload"]
        assert workload["unique_tasks"] < workload["arrivals"]


class TestMarketplaceDynamics:
    def test_spammer_wave_degrades_accuracy_deterministically(self, runner):
        from dataclasses import replace

        calm = replace(
            BASE,
            name="wave",
            storage="memory",
            straggler_fraction=0.0,
            mean_accuracy=0.95,
            accuracy_spread=0.03,
        )
        wave = replace(
            calm, spammer_wave=SpammerWave(0.25, 0.75, 0.5)
        )
        calm_result = runner.run(calm)
        wave_result = runner.run(wave)
        assert calm_result.report["quality"]["accuracy"] > (
            wave_result.report["quality"]["accuracy"]
        )
        assert any(entry["wave_active"] for entry in wave_result.event_log)
        assert not wave_result.event_log[0]["wave_active"]
        assert wave_result.report["pool"]["wave_toggles"] >= 2

    def test_metrics_report_shape_and_economics(self, runner):
        result = runner.run(BASE)
        report = result.report
        workload = report["workload"]
        assert workload["arrivals"] == BASE.num_tasks
        assert workload["unique_tasks"] == len(result.collected)
        assert workload["answers"] == workload["unique_tasks"] * BASE.redundancy
        overall = report["latency"]["overall"]
        assert overall["count"] == workload["unique_tasks"]
        assert overall["p50"] <= overall["p95"] <= overall["p99"] <= overall["max"]
        for name, summary in report["latency"]["by_type"].items():
            assert 0.0 <= summary["sla_attainment"] <= 1.0
            assert summary["sla"] > 0
        economics = report["economics"]
        assert economics["assignments_purchased"] == workload["answers"]
        assert economics["spent"] == pytest.approx(
            workload["answers"] * BASE.price_per_assignment
        )
        assert economics["marketplace_cost"] > 0
        assert report["timing"]["wall_seconds"] > 0
        # Every unique key appears exactly once, sorted, fully answered.
        keys = [entry["key"] for entry in result.collected]
        assert keys == sorted(keys) and len(set(keys)) == len(keys)
        assert all(
            len(entry["answers"]) == BASE.redundancy for entry in result.collected
        )

    def test_adaptive_scenario_spends_less_and_reports_stats(self, runner):
        from dataclasses import replace

        fixed = replace(BASE, name="fixed", storage="memory", redundancy=5)
        adaptive = replace(fixed, name="adaptive", adaptive=True)
        fixed_result = runner.run(fixed)
        adaptive_result = runner.run(adaptive)
        stats = adaptive_result.report["quality"]["adaptive"]
        assert stats["rounds"] >= 1
        assert stats["answers_collected"] == (
            adaptive_result.report["workload"]["answers"]
        )
        assert (
            adaptive_result.report["workload"]["answers"]
            < fixed_result.report["workload"]["answers"]
        )
        # Replay determinism holds on the adaptive path too.
        assert (
            runner.run(adaptive).canonical_collected
            == adaptive_result.canonical_collected
        )
        assert "adaptive" not in fixed_result.report["quality"]

    def test_adaptive_threshold_is_validated(self):
        from dataclasses import replace

        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            replace(BASE, adaptive_threshold=1.5).validate()

    def test_budget_cap_surfaces_budget_exceeded(self, runner):
        from dataclasses import replace

        capped = replace(
            BASE,
            storage="memory",
            budget=10 * BASE.redundancy * BASE.price_per_assignment,
        )
        with pytest.raises(BudgetExceededError):
            runner.run(capped)


@pytest.mark.wire
class TestWireScenario:
    def test_wire_scenario_replays_deterministically(self, runner):
        spec = ScenarioSpec(
            name="wire",
            seed=47,
            num_tasks=40,
            batch_size=20,
            num_keys=30,
            zipf_skew=0.8,
            pool_size=10,
            transport="wire",
            acceptance_mean=1.0,
            acceptance_spread=0.0,
            speed_spread=0.0,
            accuracy_spread=0.0,
        )
        first = runner.run(spec)
        second = runner.run(spec)
        assert first.canonical_collected == second.canonical_collected
        assert first.canonical_events == second.canonical_events
        assert first.report["workload"]["arrivals"] == 40
