"""Integration test for Figure 3: Ally examines Bob's experiment.

Ally receives Bob's code and database file.  She (a) reruns the code and gets
the identical result without publishing a single crowd task, (b) extends the
experiment with more images — only the new images reach the crowd — and
(c) inspects the lineage of Bob's answers.
"""

from __future__ import annotations

import shutil

import pytest

from repro import CrowdContext
from repro.presenters import ImageLabelPresenter

IMAGES = [f"http://img.example.org/shared/{i}.jpg" for i in range(8)]
EXTRA_IMAGES = [f"http://img.example.org/ally/{i}.jpg" for i in range(4)]
TRUTH = {url: ("Yes" if index % 2 == 0 else "No") for index, url in enumerate(IMAGES + EXTRA_IMAGES)}


def run_experiment(context, images):
    data = context.CrowdData(images, table_name="shared_experiment")
    data.set_presenter(ImageLabelPresenter(question="Contains a bird?"))
    data.publish_task(n_assignments=3)
    data.get_result()
    data.mv()
    return data


@pytest.fixture
def shared_db(tmp_path):
    """Bob runs the experiment and shares the database file."""
    bob_db = str(tmp_path / "bob.db")
    context = CrowdContext.with_sqlite(bob_db, seed=13)
    context.set_ground_truth(TRUTH.get)
    data = run_experiment(context, IMAGES)
    bob_labels = data.column("mv")
    context.close()
    ally_db = str(tmp_path / "ally.db")
    shutil.copy2(bob_db, ally_db)
    return ally_db, bob_labels


class TestAllyRerun:
    def test_rerun_reproduces_bob_labels_without_crowd_work(self, shared_db):
        ally_db, bob_labels = shared_db
        context = CrowdContext.with_sqlite(ally_db, seed=99)  # different seed!
        context.set_ground_truth(TRUTH.get)
        data = run_experiment(context, IMAGES)
        assert data.column("mv") == bob_labels
        # Zero tasks were published on Ally's platform: everything was cached.
        assert context.client.statistics()["tasks"] == 0
        assert context.client.statistics()["task_runs"] == 0
        context.close()

    def test_rerun_without_ground_truth_still_works(self, shared_db):
        # Ally does not even need Bob's ground-truth oracle: the answers are
        # cached, so no simulated worker is ever asked.
        ally_db, bob_labels = shared_db
        context = CrowdContext.with_sqlite(ally_db, seed=1)
        data = run_experiment(context, IMAGES)
        assert data.column("mv") == bob_labels
        context.close()

    def test_show_tables_reveals_bob_experiment(self, shared_db):
        ally_db, _ = shared_db
        context = CrowdContext.with_sqlite(ally_db, seed=1)
        assert "shared_experiment" in context.show_tables()
        context.close()


class TestAllyExtension:
    def test_extension_publishes_only_new_images(self, shared_db):
        ally_db, bob_labels = shared_db
        context = CrowdContext.with_sqlite(ally_db, seed=21)
        context.set_ground_truth(TRUTH.get)
        data = run_experiment(context, IMAGES)
        data.extend(EXTRA_IMAGES).publish_task(n_assignments=3).get_result().mv()
        # Only Ally's extra images became crowd tasks.
        assert context.client.statistics()["tasks"] == len(EXTRA_IMAGES)
        # Bob's rows keep their original labels.
        assert data.column("mv")[: len(IMAGES)] == bob_labels
        assert len(data.column("mv")) == len(IMAGES) + len(EXTRA_IMAGES)
        context.close()

    def test_alternative_quality_control_is_recomputable(self, shared_db):
        """Ally can apply a different aggregation to Bob's cached answers."""
        ally_db, _ = shared_db
        context = CrowdContext.with_sqlite(ally_db, seed=3)
        data = run_experiment(context, IMAGES)
        data.em()
        assert len(data.column("em")) == len(IMAGES)
        assert context.client.statistics()["tasks"] == 0
        context.close()


class TestAllyLineage:
    def test_lineage_answers_paper_questions(self, shared_db):
        """'When were the tasks published? Which workers did the tasks?'"""
        ally_db, _ = shared_db
        context = CrowdContext.with_sqlite(ally_db, seed=4)
        data = run_experiment(context, IMAGES)
        lineage = data.lineage()
        # Which workers did the tasks?
        workers = lineage.workers()
        assert len(workers) >= 3
        assert all(worker.startswith("w") for worker in workers)
        # When were the tasks published / answers collected?
        published_start, published_end = lineage.publication_window()
        collected_start, collected_end = lineage.collection_window()
        assert published_start <= published_end
        assert collected_start <= collected_end
        assert published_start <= collected_start
        # Every answer is attributable.
        assert len(lineage) == len(IMAGES) * 3
        context.close()

    def test_per_worker_contributions_sum_to_total_answers(self, shared_db):
        ally_db, _ = shared_db
        context = CrowdContext.with_sqlite(ally_db, seed=5)
        data = run_experiment(context, IMAGES)
        contributions = data.lineage().worker_contributions()
        assert sum(contributions.values()) == len(IMAGES) * 3
        context.close()

    def test_manipulation_history_survives_sharing(self, shared_db):
        ally_db, _ = shared_db
        context = CrowdContext.with_sqlite(ally_db, seed=6)
        data = context.CrowdData(IMAGES, table_name="shared_experiment")
        history = data.manipulation_history()
        # Bob's five steps are visible before Ally runs anything new
        # (plus the init of Ally's own CrowdData construction).
        operations = [manipulation.operation for manipulation in history]
        for expected in ("set_presenter", "publish_task", "get_result", "quality_control"):
            assert expected in operations
        context.close()
