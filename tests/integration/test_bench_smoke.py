"""Tier-1 smoke of the bulk-path benchmark: one iteration at toy scale.

Keeps ``benchmarks/bench_bulk_path.py`` importable and behaviourally correct
on every test run without paying its 5k-object cost — the full run (and its
3x speedup assertion) stays behind ``make bench``.  The benchmark module is
loaded by file path because benchmarks/ is a script directory, not a
package.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

BENCH_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "bench_bulk_path.py"


def load_bench_module():
    spec = importlib.util.spec_from_file_location("bench_bulk_path_smoke", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bulk_benchmark_smoke_single_iteration(tmp_path):
    bench = load_bench_module()
    # run_comparison itself asserts both modes end with identical platform
    # and cache state; at toy scale we check the harness, not the speedup.
    comparison = bench.run_comparison(str(tmp_path), 40)
    assert comparison["row"]["cached_tasks"] == 40
    assert comparison["bulk"]["cached_results"] == 40
    assert comparison["bulk"]["task_runs"] == 40 * bench.REDUNDANCY
    assert comparison["speedup"] > 0
