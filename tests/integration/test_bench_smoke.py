"""Tier-1 smoke of the benchmark harnesses: one iteration at toy scale.

Keeps ``benchmarks/bench_bulk_path.py`` and
``benchmarks/bench_platform_store.py`` importable and behaviourally correct
on every test run without paying their full-scale cost — the full runs (and
their speedup assertions) stay behind ``make bench``.  The benchmark modules
are loaded by file path because benchmarks/ is a script directory, not a
package.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


def load_bench_module(name: str):
    # Bench modules import their shared helpers (record.py) as top-level
    # modules, exactly as pytest's script-directory collection resolves
    # them — mirror that here since we load by file path.
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))
    spec = importlib.util.spec_from_file_location(f"{name}_smoke", BENCH_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bulk_benchmark_smoke_single_iteration(tmp_path):
    bench = load_bench_module("bench_bulk_path")
    # run_comparison itself asserts both modes end with identical platform
    # and cache state; at toy scale we check the harness, not the speedup.
    comparison = bench.run_comparison(str(tmp_path), 40)
    assert comparison["row"]["cached_tasks"] == 40
    assert comparison["bulk"]["cached_results"] == 40
    assert comparison["bulk"]["task_runs"] == 40 * bench.REDUNDANCY
    assert comparison["speedup"] > 0


def test_platform_store_benchmark_smoke_single_iteration(tmp_path):
    bench = load_bench_module("bench_platform_store")
    # run_backend itself asserts publish/simulate/collect all cover every
    # task; at toy scale we check the harness on one in-memory and one
    # durable backend, not the throughput.
    for backend in ("memory", "durable-sqlite"):
        row = bench.run_backend(backend, str(tmp_path / backend), 30, 10)
        assert row["backend"] == backend
        assert row["tasks"] == 30


def test_ring_rebalance_benchmark_smoke_single_iteration(tmp_path):
    bench = load_bench_module("bench_ring_rebalance")
    # run_rebalance_experiment itself asserts the E13 acceptance criteria
    # (moved < 2x ideal K/N, byte-identical post-rebalance scan); at toy
    # scale we check the harness and those structural guarantees, not the
    # wall-clock numbers.
    row = bench.run_rebalance_experiment(str(tmp_path / "rebalance"), 250)
    assert row["keys_moved"] < 2 * 250 / (bench.BASE_MEMBERS + 1)
    assert row["moved_pct"] < row["naive_modulo_pct"]
    parity = bench.run_scan_parity(str(tmp_path / "parity"), 120)
    assert {entry["engine"] for entry in parity} == {"ring", "sharded"}


def test_ring_replication_benchmark_smoke_single_iteration(tmp_path):
    bench = load_bench_module("bench_ring_replication")
    # run_write_amplification itself asserts the physical copy counts
    # (R=1 stores K rows, R=2 stores 2K) and run_degraded_read asserts the
    # post-kill scan is byte-identical; at toy scale we check the harness
    # and those structural guarantees, not the wall-clock numbers.
    amplification = bench.run_write_amplification(str(tmp_path / "amp"), 120)
    assert [row["replicas"] for row in amplification] == [1, 2]
    assert amplification[0]["physical_copies"] == 120
    assert amplification[1]["physical_copies"] == 240
    degraded = bench.run_degraded_read(str(tmp_path / "degraded"), 120)
    assert degraded["scan_identical"]


def test_pipelined_transport_benchmark_smoke_single_iteration(tmp_path):
    bench = load_bench_module("bench_pipelined_transport")
    # run_mode itself asserts publish/simulate/collect cover every task and
    # the two modes are compared on identical contents by the full test; at
    # toy scale we check both harness paths run, not the speedup.
    serial = bench.run_mode("serial", 40, 10, latency=0.0)
    pipelined = bench.run_mode("pipelined", 40, 10, latency=0.0)
    assert serial.pop("_collected") == pipelined.pop("_collected")
    assert serial["tasks"] == pipelined["tasks"] == 40
    row = bench.run_append_batch(8, str(tmp_path / "append"), 20)
    assert row["append_batch_size"] == 8
    assert row["tasks"] == 20


def test_hot_path_benchmark_smoke_single_iteration(tmp_path):
    bench = load_bench_module("bench_hot_path")
    # Each E16 harness asserts its own structural invariants (durability
    # across reopen, byte-identical ring scans, decode == original); at toy
    # scale we check those harnesses run, not the speedups.
    for group_commit in (False, True):
        mode = "group" if group_commit else "serial"
        row = bench.run_store_mode(group_commit, str(tmp_path / mode), 20, 10)
        assert row["tasks"] == 20
        assert row["group_commit"] is group_commit
    reopen = bench.run_ring_reopen(str(tmp_path / "ring"), 60, 15)
    assert reopen["keys"] == 60
    assert reopen["fresh_keys"] == 15
    codecs = bench.run_codec_comparison(25)
    assert [row["codec"] for row in codecs] == ["json", "binary"]
    assert codecs[1]["encoded_bytes"] < codecs[0]["encoded_bytes"]
    log_append = bench.run_log_append(str(tmp_path / "log"), 30)
    assert log_append["records"] == 30


def test_workload_benchmark_smoke_single_run(tmp_path):
    bench = load_bench_module("bench_workload")
    # run_backend drives a full scenario end-to-end; assert_slas_met holds
    # the deterministic per-type p99-under-SLA guarantee at toy scale too.
    # The cross-backend byte-identity and the throughput floor stay behind
    # `make bench`.
    spec = bench.build_spec(60, "sqlite")
    result, row = bench.run_backend(str(tmp_path), spec)
    assert row["tasks"] == 60
    assert row["answers"] == row["unique_tasks"] * spec.redundancy
    by_type = bench.assert_slas_met(result)
    assert by_type and all(
        entry["latency_p99"] < entry["sla"] for entry in by_type.values()
    )


def test_adaptive_quality_benchmark_smoke_single_run():
    bench = load_bench_module("bench_adaptive_quality")
    # run_adaptive itself asserts E18's structural guarantees (no per-task
    # run fetches, O(pages) round trips, online EM == batch EM on every
    # item); at toy scale we check the harness and the answer savings, not
    # the full-scale floors (those stay behind `make bench`).
    from repro.datasets import make_image_label_dataset

    dataset = make_image_label_dataset(num_images=40, seed=bench.SEED)
    fixed = bench.run_fixed(dataset)
    adaptive, detail = bench.run_adaptive(dataset)
    assert fixed["answers"] == 40 * bench.FIXED_REDUNDANCY
    assert adaptive["answers"] < fixed["answers"]
    assert detail["em_decision_disagreements"] == 0
    assert detail["em_items_checked"] == 40
    assert detail["rounds"] >= 1


def test_wire_cluster_benchmark_smoke_single_point(tmp_path):
    bench = load_bench_module("bench_wire_cluster")
    # One scaling point and the shared-dedup race at toy scale: checks the
    # harness spawns real server processes and the exactly-once assert
    # holds; the full sweep (and the committed BENCH_E14.json trajectory)
    # stays behind `make bench`.
    row = bench.run_scaling_point(str(tmp_path / "scale"), clients=1, tasks=10)
    assert row["total_tasks"] == 10
    assert row["tasks_per_second"] > 0
    race = bench.run_shared_dedup_race(str(tmp_path / "dedup"), clients=2, keys=6)
    assert race["exactly_once"]
    assert race["shared_keys"] == 6
