"""Unit tests for the platform client, transports and assignment strategies."""

from __future__ import annotations

import pytest

from repro.config import PlatformConfig
from repro.exceptions import NoEligibleWorkerError, PlatformError, PlatformUnavailableError
from repro.platform.assignment import (
    LeastLoadedAssignment,
    RandomAssignment,
    RoundRobinAssignment,
)
from repro.platform.client import PlatformClient
from repro.platform.server import PlatformServer
from repro.platform.transport import DirectTransport, FaultInjectingTransport
from repro.workers.pool import WorkerPool


@pytest.fixture
def server():
    pool = WorkerPool.uniform(size=8, accuracy=0.95, seed=2)
    return PlatformServer(worker_pool=pool, config=PlatformConfig(seed=2))


class TestClientBasics:
    def test_wrong_api_key_rejected(self, server):
        with pytest.raises(PlatformError):
            PlatformClient(server, api_key="nope")

    def test_create_and_find_project(self, server):
        client = PlatformClient(server)
        project = client.create_project("p", description="d")
        assert client.find_project("p").project_id == project.project_id
        assert client.get_project(project.project_id).name == "p"

    def test_task_lifecycle(self, server):
        client = PlatformClient(server)
        project = client.create_project("p")
        task = client.create_task(project.project_id, {"object": "x", "_true_answer": "Yes"}, 3)
        assert client.get_task(task.task_id).task_id == task.task_id
        assert client.pending_assignments(project.project_id) == 3
        assert not client.is_task_complete(task.task_id)
        client.simulate_work(project.project_id)
        assert client.is_task_complete(task.task_id)
        assert client.is_project_complete(project.project_id)
        assert len(client.get_task_runs(task.task_id)) == 3

    def test_delete_task_and_project(self, server):
        client = PlatformClient(server)
        project = client.create_project("p")
        task = client.create_task(project.project_id, {"object": "x"})
        client.delete_task(task.task_id)
        assert client.list_tasks(project.project_id) == []
        client.delete_project(project.project_id)
        assert client.find_project("p") is None

    def test_invalid_max_retries(self, server):
        with pytest.raises(ValueError):
            PlatformClient(server, max_retries=0)


class TestFaultInjectingTransport:
    def test_all_failures_eventually_propagate(self, server):
        transport = FaultInjectingTransport(failure_rate=1.0, seed=1)
        client = PlatformClient(server, transport=transport, max_retries=3)
        with pytest.raises(PlatformUnavailableError):
            client.create_project("p")
        assert transport.failures_injected == 3

    def test_partial_failures_are_retried_away(self, server):
        transport = FaultInjectingTransport(failure_rate=0.4, seed=3)
        client = PlatformClient(server, transport=transport, max_retries=10)
        project = client.create_project("p")
        for index in range(20):
            client.create_task(project.project_id, {"object": index, "_true_answer": "Yes"}, 2)
        client.simulate_work(project.project_id)
        assert client.is_project_complete(project.project_id)
        assert transport.failures_injected > 0

    def test_duplicate_delivery_of_create_project_is_harmless(self, server):
        transport = FaultInjectingTransport(duplicate_rate=1.0, seed=4)
        client = PlatformClient(server, transport=transport)
        client.create_project("p")
        # Idempotent server-side creation: only one project despite the replay.
        assert len(server.list_projects()) == 1
        assert transport.duplicates_injected >= 1

    def test_statistics(self):
        transport = FaultInjectingTransport(failure_rate=0.0, seed=1)
        transport.call("noop", lambda: 1)
        assert transport.statistics()["calls"] == 1

    def test_statistics_tally_calls_and_failures_per_name(self, server):
        """The fault transport shares CountingTransport's per-name tallies,
        so a test can assert *which* call was retried, not just how many."""
        transport = FaultInjectingTransport(failure_rate=0.4, seed=3)
        client = PlatformClient(server, transport=transport, max_retries=10)
        project = client.create_project("p")
        client.create_tasks(
            project.project_id,
            [{"info": {"object": i, "_true_answer": "Yes"}} for i in range(10)],
        )
        stats = transport.statistics()
        assert stats["failures_injected"] > 0
        assert stats["calls"] == sum(stats["calls_by_name"].values())
        assert stats["failures_injected"] == sum(stats["failures_by_name"].values())
        # Every injected failure was absorbed by a same-name retry: each
        # call name ends with exactly one more attempt than failures.
        retried = {"create_project": 1, "create_tasks": 1}
        for name, attempts in stats["calls_by_name"].items():
            assert attempts == stats["failures_by_name"].get(name, 0) + retried[name]

    def test_counting_transport_statistics_share_the_same_shape(self, server):
        from repro.platform.transport import CountingTransport

        transport = CountingTransport()
        client = PlatformClient(server, transport=transport)
        client.create_project("p")
        client.find_project("p")
        stats = transport.statistics()
        assert stats["calls"] == 2
        assert stats["calls_by_name"] == {"create_project": 1, "find_project": 1}

    def test_counters_tally_attempts_not_successes(self, server):
        """The documented unit of every per-name counter is the *attempt*:
        with the transport hard-down and max_retries=3, one logical
        create_project is three attempts, three failures, zero successes."""
        transport = FaultInjectingTransport(failure_rate=1.0, seed=9)
        client = PlatformClient(server, transport=transport, max_retries=3)
        with pytest.raises(PlatformUnavailableError):
            client.create_project("p")
        stats = transport.statistics()
        assert stats["calls_by_name"] == {"create_project": 3}
        assert stats["failures_by_name"] == {"create_project": 3}
        # Successful operations = attempts - failures.
        assert (
            stats["calls_by_name"]["create_project"]
            - stats["failures_by_name"]["create_project"]
            == 0
        )
        assert len(server.list_projects()) == 0

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            FaultInjectingTransport(failure_rate=1.5)

    def test_direct_transport_passthrough(self):
        assert DirectTransport().call("add", lambda a, b: a + b, 1, 2) == 3


class TestAssignmentStrategies:
    def test_random_assignment_distinct(self):
        pool = WorkerPool.uniform(size=10, accuracy=0.9, seed=5)
        workers = RandomAssignment().assign(pool, 4)
        assert len({worker.worker_id for worker in workers}) == 4

    def test_random_assignment_too_many(self):
        pool = WorkerPool.uniform(size=3, accuracy=0.9, seed=5)
        with pytest.raises(NoEligibleWorkerError):
            RandomAssignment().assign(pool, 4)

    def test_round_robin_cycles_through_pool(self):
        pool = WorkerPool.uniform(size=4, accuracy=0.9, seed=5)
        strategy = RoundRobinAssignment()
        first = [worker.worker_id for worker in strategy.assign(pool, 2)]
        second = [worker.worker_id for worker in strategy.assign(pool, 2)]
        assert first + second == pool.worker_ids()

    def test_least_loaded_prefers_idle_workers(self):
        pool = WorkerPool.uniform(size=4, accuracy=0.9, seed=5)
        busy = pool.workers[0]
        busy.answered_tasks = 10
        chosen = LeastLoadedAssignment().assign(pool, 3)
        assert busy.worker_id not in {worker.worker_id for worker in chosen}

    def test_invalid_n_assignments(self):
        pool = WorkerPool.uniform(size=4, accuracy=0.9, seed=5)
        with pytest.raises(ValueError):
            RandomAssignment().assign(pool, 0)
