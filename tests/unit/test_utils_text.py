"""Unit tests for repro.utils.text."""

from __future__ import annotations

import pytest

from repro.utils.text import (
    cosine_similarity,
    edit_distance,
    edit_similarity,
    jaccard_similarity,
    ngrams,
    normalize_text,
    overlap_coefficient,
    record_text,
    token_vector,
    tokenize,
)


class TestNormalizeText:
    def test_lowercases(self):
        assert normalize_text("HELLO World") == "hello world"

    def test_collapses_whitespace(self):
        assert normalize_text("  a   b\t c  ") == "a b c"

    def test_empty_string(self):
        assert normalize_text("") == ""


class TestTokenize:
    def test_splits_on_punctuation(self):
        assert tokenize("Apple iPhone-6, 16GB!") == ["apple", "iphone", "6", "16gb"]

    def test_empty(self):
        assert tokenize("") == []

    def test_numbers_kept(self):
        assert tokenize("model 1234") == ["model", "1234"]


class TestNgrams:
    def test_basic_trigram(self):
        assert ngrams("abcd", 3) == ["abc", "bcd"]

    def test_short_string_returns_whole(self):
        assert ngrams("ab", 3) == ["ab"]

    def test_empty_string(self):
        assert ngrams("", 3) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams("abc", 0)

    def test_normalises_before_gramming(self):
        assert ngrams("A  B", 3) == ["a b"]


class TestJaccard:
    def test_identical(self):
        assert jaccard_similarity("apple pie", "apple pie") == 1.0

    def test_disjoint(self):
        assert jaccard_similarity("apple", "banana") == 0.0

    def test_partial_overlap(self):
        assert jaccard_similarity("a b c", "b c d") == pytest.approx(2 / 4)

    def test_both_empty(self):
        assert jaccard_similarity("", "") == 1.0

    def test_one_empty(self):
        assert jaccard_similarity("apple", "") == 0.0

    def test_symmetry(self):
        assert jaccard_similarity("a b c", "c d") == jaccard_similarity("c d", "a b c")

    def test_accepts_token_iterables(self):
        assert jaccard_similarity(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)


class TestOverlapCoefficient:
    def test_subset_is_one(self):
        assert overlap_coefficient("a b", "a b c d") == 1.0

    def test_disjoint(self):
        assert overlap_coefficient("a", "b") == 0.0

    def test_both_empty(self):
        assert overlap_coefficient("", "") == 1.0


class TestCosine:
    def test_identical(self):
        assert cosine_similarity("a b c", "a b c") == pytest.approx(1.0)

    def test_disjoint(self):
        assert cosine_similarity("a", "b") == 0.0

    def test_accepts_counters(self):
        assert cosine_similarity(token_vector("a a b"), token_vector("a b")) > 0.9

    def test_both_empty(self):
        assert cosine_similarity("", "") == 1.0


class TestEditDistance:
    def test_identical(self):
        assert edit_distance("kitten", "kitten") == 0

    def test_classic_example(self):
        assert edit_distance("kitten", "sitting") == 3

    def test_empty_vs_word(self):
        assert edit_distance("", "abc") == 3
        assert edit_distance("abc", "") == 3

    def test_symmetry(self):
        assert edit_distance("abcdef", "azced") == edit_distance("azced", "abcdef")

    def test_single_substitution(self):
        assert edit_distance("cat", "car") == 1


class TestEditSimilarity:
    def test_identical(self):
        assert edit_similarity("same", "same") == 1.0

    def test_both_empty(self):
        assert edit_similarity("", "") == 1.0

    def test_bounded(self):
        assert 0.0 <= edit_similarity("abc", "xyz") <= 1.0

    def test_one_char_off(self):
        assert edit_similarity("cat", "car") == pytest.approx(2 / 3)


class TestRecordText:
    def test_dict_record_sorted_keys(self):
        assert record_text({"b": "world", "a": "Hello"}) == "hello world"

    def test_dict_record_selected_fields(self):
        record = {"name": "Apple", "price": 10, "id": 3}
        assert record_text(record, fields=["name"]) == "apple"

    def test_sequence_record(self):
        assert record_text(["A", 1, "b"]) == "a 1 b"
