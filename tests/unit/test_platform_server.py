"""Unit tests for the simulated platform server."""

from __future__ import annotations

import pytest

from repro.config import PlatformConfig
from repro.exceptions import PlatformError, ProjectNotFoundError, TaskNotFoundError
from repro.platform.models import Project, Task, TaskRun
from repro.platform.server import PlatformServer
from repro.workers.pool import WorkerPool


@pytest.fixture
def server():
    pool = WorkerPool.uniform(size=10, accuracy=0.95, seed=1)
    return PlatformServer(worker_pool=pool, config=PlatformConfig(seed=1))


class TestModels:
    def test_project_roundtrip(self):
        project = Project(project_id=1, name="p", short_name="p", description="d")
        assert Project.from_dict(project.to_dict()) == project

    def test_task_roundtrip(self):
        task = Task(task_id=3, project_id=1, info={"object": "x"}, n_assignments=5)
        assert Task.from_dict(task.to_dict()) == task

    def test_task_run_roundtrip(self):
        run = TaskRun(
            run_id=9, task_id=3, project_id=1, worker_id="w1", answer="Yes",
            submitted_at=10.0, latency_seconds=4.0, assignment_order=2,
        )
        assert TaskRun.from_dict(run.to_dict()) == run


class TestProjects:
    def test_create_project(self, server):
        project = server.create_project("my experiment", description="d")
        assert project.project_id == 1
        assert project.short_name == "my-experiment"

    def test_create_is_idempotent_by_name(self, server):
        first = server.create_project("p")
        second = server.create_project("p")
        assert first.project_id == second.project_id
        assert len(server.list_projects()) == 1

    def test_find_project(self, server):
        server.create_project("p")
        assert server.find_project("p") is not None
        assert server.find_project("missing") is None

    def test_get_missing_project_raises(self, server):
        with pytest.raises(ProjectNotFoundError):
            server.get_project(99)

    def test_delete_project_removes_tasks(self, server):
        project = server.create_project("p")
        task = server.create_task(project.project_id, {"object": "x"})
        server.delete_project(project.project_id)
        with pytest.raises(ProjectNotFoundError):
            server.get_project(project.project_id)
        with pytest.raises(TaskNotFoundError):
            server.get_task(task.task_id)

    def test_authentication(self, server):
        assert server.authenticate("test-api-key")
        assert not server.authenticate("wrong")
        with pytest.raises(PlatformError):
            server.require_auth("wrong")


class TestTasks:
    def test_create_task_uses_default_redundancy(self, server):
        project = server.create_project("p")
        task = server.create_task(project.project_id, {"object": "x"})
        assert task.n_assignments == server.config.default_redundancy

    def test_create_task_overrides_redundancy(self, server):
        project = server.create_project("p")
        task = server.create_task(project.project_id, {"object": "x"}, n_assignments=7)
        assert task.n_assignments == 7

    def test_create_task_rejects_bad_redundancy(self, server):
        project = server.create_project("p")
        with pytest.raises(PlatformError):
            server.create_task(project.project_id, {"object": "x"}, n_assignments=0)

    def test_create_task_unknown_project(self, server):
        with pytest.raises(ProjectNotFoundError):
            server.create_task(42, {"object": "x"})

    def test_list_tasks_in_publication_order(self, server):
        project = server.create_project("p")
        ids = [server.create_task(project.project_id, {"i": i}).task_id for i in range(5)]
        assert [task.task_id for task in server.list_tasks(project.project_id)] == ids

    def test_delete_task(self, server):
        project = server.create_project("p")
        task = server.create_task(project.project_id, {"object": "x"})
        server.delete_task(task.task_id)
        assert server.list_tasks(project.project_id) == []


class TestWorkSimulation:
    def test_pending_assignments_counts_missing_answers(self, server):
        project = server.create_project("p")
        server.create_task(project.project_id, {"object": "x", "_true_answer": "Yes"}, 3)
        server.create_task(project.project_id, {"object": "y", "_true_answer": "No"}, 2)
        assert server.pending_assignments(project.project_id) == 5

    def test_simulate_work_fills_all_assignments(self, server):
        project = server.create_project("p")
        task = server.create_task(
            project.project_id,
            {"object": "x", "candidates": ["Yes", "No"], "_true_answer": "Yes"},
            3,
        )
        created = server.simulate_work(project.project_id)
        assert created == 3
        assert server.is_task_complete(task.task_id)
        assert server.pending_assignments(project.project_id) == 0

    def test_simulate_work_is_idempotent_once_complete(self, server):
        project = server.create_project("p")
        server.create_task(project.project_id, {"object": "x", "_true_answer": "Yes"}, 3)
        server.simulate_work(project.project_id)
        assert server.simulate_work(project.project_id) == 0

    def test_task_runs_have_distinct_workers(self, server):
        project = server.create_project("p")
        task = server.create_task(
            project.project_id,
            {"object": "x", "candidates": ["Yes", "No"], "_true_answer": "Yes"},
            5,
        )
        server.simulate_work(project.project_id)
        runs = server.get_task_runs(task.task_id)
        assert len({run.worker_id for run in runs}) == 5

    def test_redundancy_above_pool_size_reuses_workers(self):
        pool = WorkerPool.uniform(size=2, accuracy=0.9, seed=1)
        server = PlatformServer(worker_pool=pool, config=PlatformConfig(seed=1))
        project = server.create_project("p")
        task = server.create_task(project.project_id, {"object": "x", "_true_answer": "Yes"}, 4)
        server.simulate_work(project.project_id)
        assert len(server.get_task_runs(task.task_id)) == 4

    def test_max_assignments_limits_progress(self, server):
        project = server.create_project("p")
        for index in range(4):
            server.create_task(project.project_id, {"object": index, "_true_answer": "Yes"}, 3)
        created = server.simulate_work(project.project_id, max_assignments=5)
        assert created == 5
        assert server.pending_assignments(project.project_id) == 7

    def test_assignment_order_and_timestamps_increase(self, server):
        project = server.create_project("p")
        task = server.create_task(
            project.project_id, {"object": "x", "_true_answer": "Yes"}, 3
        )
        server.simulate_work(project.project_id)
        runs = server.get_task_runs(task.task_id)
        assert [run.assignment_order for run in runs] == [1, 2, 3]
        times = [run.submitted_at for run in runs]
        assert times == sorted(times)
        assert all(run.latency_seconds > 0 for run in runs)

    def test_reliable_oracle_answers_match_truth(self):
        pool = WorkerPool.uniform(size=5, accuracy=1.0, seed=1)
        server = PlatformServer(worker_pool=pool, config=PlatformConfig(seed=1))
        project = server.create_project("p")
        task = server.create_task(
            project.project_id,
            {"object": "x", "candidates": ["Yes", "No"], "_true_answer": "No"},
            3,
        )
        server.simulate_work(project.project_id)
        assert all(run.answer == "No" for run in server.get_task_runs(task.task_id))

    def test_custom_answer_oracle(self):
        pool = WorkerPool.uniform(size=5, accuracy=1.0, seed=1)
        server = PlatformServer(
            worker_pool=pool,
            config=PlatformConfig(seed=1),
            answer_oracle=lambda info: "Cat" if "cat" in str(info["object"]) else "Dog",
        )
        project = server.create_project("p")
        task = server.create_task(
            project.project_id, {"object": "a cat picture", "candidates": ["Cat", "Dog"]}, 2
        )
        server.simulate_work()
        assert {run.answer for run in server.get_task_runs(task.task_id)} == {"Cat"}

    def test_statistics(self, server):
        project = server.create_project("p")
        server.create_task(project.project_id, {"object": "x", "_true_answer": "Yes"}, 3)
        server.simulate_work()
        stats = server.statistics()
        assert stats["projects"] == 1
        assert stats["tasks"] == 1
        assert stats["task_runs"] == 3
        assert stats["pending_assignments"] == 0
