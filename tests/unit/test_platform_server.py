"""Unit tests for the simulated platform server."""

from __future__ import annotations

import pytest

from repro.config import PlatformConfig
from repro.exceptions import PlatformError, ProjectNotFoundError, TaskNotFoundError
from repro.platform.models import Project, Task, TaskRun
from repro.platform.server import PlatformServer
from repro.platform.store import DurableTaskStore
from repro.storage import SqliteEngine
from repro.workers.pool import WorkerPool


@pytest.fixture(params=["memory", "durable"])
def server(request, tmp_path):
    """The whole suite runs once per task store: the two implementations
    behind PlatformServer must be behaviourally indistinguishable."""
    pool = WorkerPool.uniform(size=10, accuracy=0.95, seed=1)
    store = None
    if request.param == "durable":
        store = DurableTaskStore(
            SqliteEngine(str(tmp_path / "platform.db")), owns_engine=True
        )
    yield PlatformServer(worker_pool=pool, config=PlatformConfig(seed=1), store=store)
    if store is not None:
        store.close()


class TestModels:
    def test_project_roundtrip(self):
        project = Project(project_id=1, name="p", short_name="p", description="d")
        assert Project.from_dict(project.to_dict()) == project

    def test_task_roundtrip(self):
        task = Task(task_id=3, project_id=1, info={"object": "x"}, n_assignments=5)
        assert Task.from_dict(task.to_dict()) == task

    def test_task_run_roundtrip(self):
        run = TaskRun(
            run_id=9, task_id=3, project_id=1, worker_id="w1", answer="Yes",
            submitted_at=10.0, latency_seconds=4.0, assignment_order=2,
        )
        assert TaskRun.from_dict(run.to_dict()) == run


class TestProjects:
    def test_create_project(self, server):
        project = server.create_project("my experiment", description="d")
        assert project.project_id == 1
        assert project.short_name == "my-experiment"

    def test_create_is_idempotent_by_name(self, server):
        first = server.create_project("p")
        second = server.create_project("p")
        assert first.project_id == second.project_id
        assert len(server.list_projects()) == 1

    def test_find_project(self, server):
        server.create_project("p")
        assert server.find_project("p") is not None
        assert server.find_project("missing") is None

    def test_get_missing_project_raises(self, server):
        with pytest.raises(ProjectNotFoundError):
            server.get_project(99)

    def test_delete_project_removes_tasks(self, server):
        project = server.create_project("p")
        task = server.create_task(project.project_id, {"object": "x"})
        server.delete_project(project.project_id)
        with pytest.raises(ProjectNotFoundError):
            server.get_project(project.project_id)
        with pytest.raises(TaskNotFoundError):
            server.get_task(task.task_id)

    def test_authentication(self, server):
        assert server.authenticate("test-api-key")
        assert not server.authenticate("wrong")
        with pytest.raises(PlatformError):
            server.require_auth("wrong")


class TestTasks:
    def test_create_task_uses_default_redundancy(self, server):
        project = server.create_project("p")
        task = server.create_task(project.project_id, {"object": "x"})
        assert task.n_assignments == server.config.default_redundancy

    def test_create_task_overrides_redundancy(self, server):
        project = server.create_project("p")
        task = server.create_task(project.project_id, {"object": "x"}, n_assignments=7)
        assert task.n_assignments == 7

    def test_create_task_rejects_bad_redundancy(self, server):
        project = server.create_project("p")
        with pytest.raises(PlatformError):
            server.create_task(project.project_id, {"object": "x"}, n_assignments=0)

    def test_create_task_unknown_project(self, server):
        with pytest.raises(ProjectNotFoundError):
            server.create_task(42, {"object": "x"})

    def test_list_tasks_in_publication_order(self, server):
        project = server.create_project("p")
        ids = [server.create_task(project.project_id, {"i": i}).task_id for i in range(5)]
        assert [task.task_id for task in server.list_tasks(project.project_id)] == ids

    def test_delete_task(self, server):
        project = server.create_project("p")
        task = server.create_task(project.project_id, {"object": "x"})
        server.delete_task(task.task_id)
        assert server.list_tasks(project.project_id) == []


class TestBatchPublish:
    def test_create_tasks_returns_tasks_in_spec_order(self, server):
        project = server.create_project("p")
        tasks = server.create_tasks(
            project.project_id, [{"info": {"i": i}} for i in range(5)]
        )
        assert [task.info["i"] for task in tasks] == list(range(5))
        assert [task.task_id for task in server.list_tasks(project.project_id)] == [
            task.task_id for task in tasks
        ]

    def test_batch_redundancy_matches_single_publish(self, server):
        project = server.create_project("p")
        single_default = server.create_task(project.project_id, {"object": "a"})
        single_custom = server.create_task(project.project_id, {"object": "b"}, 7)
        batch_default, batch_custom = server.create_tasks(
            project.project_id,
            [{"info": {"object": "c"}}, {"info": {"object": "d"}, "n_assignments": 7}],
        )
        assert batch_default.n_assignments == single_default.n_assignments
        assert batch_custom.n_assignments == single_custom.n_assignments

    def test_bad_spec_publishes_nothing(self, server):
        project = server.create_project("p")
        with pytest.raises(PlatformError):
            server.create_tasks(
                project.project_id,
                [{"info": {"i": 0}}, {"info": {"i": 1}, "n_assignments": 0}],
            )
        with pytest.raises(PlatformError):
            server.create_tasks(project.project_id, [{"n_assignments": 3}])
        assert server.list_tasks(project.project_id) == []

    def test_create_tasks_unknown_project(self, server):
        with pytest.raises(ProjectNotFoundError):
            server.create_tasks(42, [{"info": {}}])

    def test_dedup_key_makes_batch_publish_idempotent(self, server):
        project = server.create_project("p")
        specs = [{"info": {"i": i}, "dedup_key": f"k{i}"} for i in range(4)]
        first = server.create_tasks(project.project_id, specs)
        replayed = server.create_tasks(project.project_id, specs)
        assert [task.task_id for task in replayed] == [task.task_id for task in first]
        assert len(server.list_tasks(project.project_id)) == 4

    def test_dedup_is_shared_between_single_and_batch_publish(self, server):
        project = server.create_project("p")
        single = server.create_task(project.project_id, {"i": 0}, dedup_key="k0")
        (batched,) = server.create_tasks(
            project.project_id, [{"info": {"i": 0}, "dedup_key": "k0"}]
        )
        assert batched.task_id == single.task_id

    def test_dedup_is_scoped_per_project(self, server):
        first = server.create_project("p1")
        second = server.create_project("p2")
        task_a = server.create_task(first.project_id, {"i": 0}, dedup_key="k")
        task_b = server.create_task(second.project_id, {"i": 0}, dedup_key="k")
        assert task_a.task_id != task_b.task_id

    def test_deleted_task_is_not_resurrected_by_dedup(self, server):
        project = server.create_project("p")
        task = server.create_task(project.project_id, {"i": 0}, dedup_key="k")
        server.delete_task(task.task_id)
        fresh = server.create_task(project.project_id, {"i": 0}, dedup_key="k")
        assert fresh.task_id != task.task_id

    def test_get_task_runs_for_project_covers_every_task(self, server):
        project = server.create_project("p")
        tasks = server.create_tasks(
            project.project_id,
            [{"info": {"i": i, "_true_answer": "Yes"}, "n_assignments": 2} for i in range(3)],
        )
        runs_map = server.get_task_runs_for_project(project.project_id)
        assert runs_map == {task.task_id: [] for task in tasks}
        server.simulate_work(project.project_id)
        runs_map = server.get_task_runs_for_project(project.project_id)
        assert set(runs_map) == {task.task_id for task in tasks}
        assert all(len(runs) == 2 for runs in runs_map.values())
        for task in tasks:
            assert [run.run_id for run in runs_map[task.task_id]] == [
                run.run_id for run in server.get_task_runs(task.task_id)
            ]

    def test_assignment_strategy_identical_between_single_and_batch(self):
        """The same crowd answers the same tasks whichever way they were
        published: worker selection must not depend on the publish batching."""
        from repro.platform.assignment import RoundRobinAssignment

        def build_server():
            pool = WorkerPool.uniform(size=6, accuracy=1.0, seed=5)
            return PlatformServer(
                worker_pool=pool,
                config=PlatformConfig(seed=5),
                assignment=RoundRobinAssignment(),
            )

        infos = [{"i": i, "candidates": ["Yes", "No"], "_true_answer": "Yes"} for i in range(4)]

        single = build_server()
        project = single.create_project("p")
        for info in infos:
            single.create_task(project.project_id, info, 3)
        single.simulate_work(project.project_id)

        batch = build_server()
        project_b = batch.create_project("p")
        batch.create_tasks(
            project_b.project_id, [{"info": info, "n_assignments": 3} for info in infos]
        )
        batch.simulate_work(project_b.project_id)

        single_runs = [
            (run.task_id, run.worker_id, run.answer)
            for run in single.project_task_runs(project.project_id)
        ]
        batch_runs = [
            (run.task_id, run.worker_id, run.answer)
            for run in batch.project_task_runs(project_b.project_id)
        ]
        assert single_runs == batch_runs


class TestBatchBudgetCharging:
    def test_bulk_publish_charges_like_single_publish(self, tmp_path):
        """One charge per row at the same price whichever path publishes."""
        from repro import CrowdContext
        from repro.core.budget import BudgetTracker
        from repro.presenters import ImageLabelPresenter

        def spend(objects) -> tuple[float, int]:
            budget = BudgetTracker(price_per_assignment=0.05)
            context = CrowdContext.in_memory(budget=budget)
            data = context.CrowdData(objects, "budgeted")
            data.set_presenter(ImageLabelPresenter())
            data.publish_task(n_assignments=3)
            context.close()
            return budget.spent, len(budget.charges)

        objects = [f"img-{i}.png" for i in range(6)]
        bulk_spent, bulk_charges = spend(objects)
        expected = sum(spend([obj])[0] for obj in objects)
        assert bulk_spent == pytest.approx(expected)
        assert bulk_charges == len(objects)

    def test_tight_budget_publishes_affordable_prefix_only(self):
        """Spend always equals crowd work actually purchased: a batch the
        budget cannot cover publishes its affordable prefix, charges exactly
        that, and raises so a rerun with more budget resumes."""
        from repro import CrowdContext
        from repro.core.budget import BudgetExceededError, BudgetTracker
        from repro.presenters import ImageLabelPresenter

        budget = BudgetTracker(price_per_assignment=0.10, budget=0.90)  # 3 tasks at r=3
        context = CrowdContext.in_memory(budget=budget)
        data = context.CrowdData([f"img-{i}.png" for i in range(5)], "tight")
        data.set_presenter(ImageLabelPresenter())
        with pytest.raises(BudgetExceededError):
            data.publish_task(n_assignments=3)
        assert context.client.statistics()["tasks"] == 3
        assert budget.total_assignments() == 9
        assert budget.spent == pytest.approx(0.90)

    def test_republished_rows_are_not_recharged(self):
        """A rerun with a warm cache publishes and charges nothing."""
        from repro import CrowdContext
        from repro.core.budget import BudgetTracker
        from repro.presenters import ImageLabelPresenter
        from repro.storage import MemoryEngine

        engine = MemoryEngine()
        first_budget = BudgetTracker()
        context = CrowdContext.in_memory(engine=engine, budget=first_budget)
        objects = [f"img-{i}.png" for i in range(4)]
        context.CrowdData(objects, "warm").set_presenter(
            ImageLabelPresenter()
        ).publish_task(n_assignments=3)

        rerun_budget = BudgetTracker()
        rerun = CrowdContext.in_memory(
            engine=engine, client=context.client, budget=rerun_budget
        )
        rerun.CrowdData(objects, "warm").set_presenter(
            ImageLabelPresenter()
        ).publish_task(n_assignments=3)
        assert rerun_budget.spent == 0.0
        assert context.client.statistics()["tasks"] == len(objects)


class TestWorkSimulation:
    def test_pending_assignments_counts_missing_answers(self, server):
        project = server.create_project("p")
        server.create_task(project.project_id, {"object": "x", "_true_answer": "Yes"}, 3)
        server.create_task(project.project_id, {"object": "y", "_true_answer": "No"}, 2)
        assert server.pending_assignments(project.project_id) == 5

    def test_simulate_work_fills_all_assignments(self, server):
        project = server.create_project("p")
        task = server.create_task(
            project.project_id,
            {"object": "x", "candidates": ["Yes", "No"], "_true_answer": "Yes"},
            3,
        )
        created = server.simulate_work(project.project_id)
        assert created == 3
        assert server.is_task_complete(task.task_id)
        assert server.pending_assignments(project.project_id) == 0

    def test_simulate_work_is_idempotent_once_complete(self, server):
        project = server.create_project("p")
        server.create_task(project.project_id, {"object": "x", "_true_answer": "Yes"}, 3)
        server.simulate_work(project.project_id)
        assert server.simulate_work(project.project_id) == 0

    def test_task_runs_have_distinct_workers(self, server):
        project = server.create_project("p")
        task = server.create_task(
            project.project_id,
            {"object": "x", "candidates": ["Yes", "No"], "_true_answer": "Yes"},
            5,
        )
        server.simulate_work(project.project_id)
        runs = server.get_task_runs(task.task_id)
        assert len({run.worker_id for run in runs}) == 5

    def test_redundancy_above_pool_size_reuses_workers(self):
        pool = WorkerPool.uniform(size=2, accuracy=0.9, seed=1)
        server = PlatformServer(worker_pool=pool, config=PlatformConfig(seed=1))
        project = server.create_project("p")
        task = server.create_task(project.project_id, {"object": "x", "_true_answer": "Yes"}, 4)
        server.simulate_work(project.project_id)
        assert len(server.get_task_runs(task.task_id)) == 4

    def test_max_assignments_limits_progress(self, server):
        project = server.create_project("p")
        for index in range(4):
            server.create_task(project.project_id, {"object": index, "_true_answer": "Yes"}, 3)
        created = server.simulate_work(project.project_id, max_assignments=5)
        assert created == 5
        assert server.pending_assignments(project.project_id) == 7

    def test_assignment_order_and_timestamps_increase(self, server):
        project = server.create_project("p")
        task = server.create_task(
            project.project_id, {"object": "x", "_true_answer": "Yes"}, 3
        )
        server.simulate_work(project.project_id)
        runs = server.get_task_runs(task.task_id)
        assert [run.assignment_order for run in runs] == [1, 2, 3]
        times = [run.submitted_at for run in runs]
        assert times == sorted(times)
        assert all(run.latency_seconds > 0 for run in runs)

    def test_reliable_oracle_answers_match_truth(self):
        pool = WorkerPool.uniform(size=5, accuracy=1.0, seed=1)
        server = PlatformServer(worker_pool=pool, config=PlatformConfig(seed=1))
        project = server.create_project("p")
        task = server.create_task(
            project.project_id,
            {"object": "x", "candidates": ["Yes", "No"], "_true_answer": "No"},
            3,
        )
        server.simulate_work(project.project_id)
        assert all(run.answer == "No" for run in server.get_task_runs(task.task_id))

    def test_custom_answer_oracle(self):
        pool = WorkerPool.uniform(size=5, accuracy=1.0, seed=1)
        server = PlatformServer(
            worker_pool=pool,
            config=PlatformConfig(seed=1),
            answer_oracle=lambda info: "Cat" if "cat" in str(info["object"]) else "Dog",
        )
        project = server.create_project("p")
        task = server.create_task(
            project.project_id, {"object": "a cat picture", "candidates": ["Cat", "Dog"]}, 2
        )
        server.simulate_work()
        assert {run.answer for run in server.get_task_runs(task.task_id)} == {"Cat"}

    def test_statistics(self, server):
        project = server.create_project("p")
        server.create_task(project.project_id, {"object": "x", "_true_answer": "Yes"}, 3)
        server.simulate_work()
        stats = server.statistics()
        assert stats["projects"] == 1
        assert stats["tasks"] == 1
        assert stats["task_runs"] == 3
        assert stats["pending_assignments"] == 0
