"""Crash injection in the middle of bulk cache writes.

The bulk publish path creates every platform task *before* the batch cache
write, so a crash mid-``put_many`` is the hardest recovery case: the platform
knows all N tasks but the durable cache only a prefix.  These tests crash
there (via :class:`repro.simulation.crash.CrashingEngine`, whose
``put_many`` deliberately makes each item durable individually so the crash
lands inside the batch) and prove the rerun publishes zero duplicate tasks,
re-collects zero answers, and never overwrites a surviving cache record —
every cached record must still be at version 1 after any number of reruns.
"""

from __future__ import annotations

import pytest

from repro import CrowdContext
from repro.config import PlatformConfig, WorkerPoolConfig
from repro.core.cache import FaultRecoveryCache
from repro.exceptions import CrashInjected
from repro.platform.client import PlatformClient
from repro.platform.server import PlatformServer
from repro.presenters import ImageLabelPresenter
from repro.simulation import CrashPlan, CrashingEngine
from repro.storage import SqliteEngine
from repro.workers.pool import WorkerPool

NUM_IMAGES = 12
REDUNDANCY = 3


@pytest.fixture
def images():
    return [f"img-{index:03d}.png" for index in range(NUM_IMAGES)]


@pytest.fixture
def durable_platform():
    pool = WorkerPool.from_config(WorkerPoolConfig(size=20, mean_accuracy=0.95, seed=11))
    return PlatformClient(PlatformServer(worker_pool=pool, config=PlatformConfig(seed=11)))


def experiment(engine, client, images):
    context = CrowdContext(engine=engine, client=client, ground_truth=lambda obj: "Yes")
    data = context.CrowdData(images, "bulk_crash")
    data.set_presenter(ImageLabelPresenter())
    data.publish_task(n_assignments=REDUNDANCY)
    data.get_result()
    return data


def cache_versions(engine, table):
    return [record.version for record in engine.scan(f"bulk_crash::{table}")]


class TestCrashMidBatchPublish:
    # Writes before the task batch: __tables__ + init log + presenter meta +
    # set_presenter log + project meta = 5; the task put_many spans writes
    # 6..17, so these points all land strictly inside the batch.
    @pytest.mark.parametrize("crash_after", [6, 9, 13, 16])
    def test_rerun_publishes_zero_duplicate_tasks(
        self, tmp_path, images, durable_platform, crash_after
    ):
        durable = SqliteEngine(str(tmp_path / "crash.db"))
        with pytest.raises(CrashInjected):
            experiment(
                CrashingEngine(durable, CrashPlan(crash_after_writes=crash_after)),
                durable_platform,
                images,
            )
        # The batch create_tasks call ran before the crashing cache write:
        # the platform already has every task, the cache only a prefix.
        assert durable_platform.statistics()["tasks"] == NUM_IMAGES
        cached_before_rerun = durable.count("bulk_crash::tasks")
        assert 0 < cached_before_rerun < NUM_IMAGES

        data = experiment(durable, durable_platform, images)
        stats = durable_platform.statistics()
        assert stats["tasks"] == NUM_IMAGES
        assert stats["task_runs"] == NUM_IMAGES * REDUNDANCY
        assert all(result["complete"] for result in data.column("result"))
        # put_new semantics per key: the surviving prefix was never rewritten.
        assert cache_versions(durable, "tasks") == [1] * NUM_IMAGES
        durable.close()


class TestCrashMidBatchCollect:
    @pytest.mark.parametrize("crash_offset", [1, 5, 11])
    def test_rerun_recollects_zero_answers(
        self, tmp_path, images, durable_platform, crash_offset
    ):
        durable = SqliteEngine(str(tmp_path / "collect.db"))
        # Clean publish+collect counts 5 + 12 + 1 + 12 + 1 writes; crash the
        # first attempt inside the result batch (writes 19..30).
        crash_after = 5 + NUM_IMAGES + 1 + crash_offset
        with pytest.raises(CrashInjected):
            experiment(
                CrashingEngine(durable, CrashPlan(crash_after_writes=crash_after)),
                durable_platform,
                images,
            )
        runs_after_crash = durable_platform.statistics()["task_runs"]
        assert runs_after_crash == NUM_IMAGES * REDUNDANCY
        cached_results = durable.count("bulk_crash::results")
        assert 0 < cached_results < NUM_IMAGES

        data = experiment(durable, durable_platform, images)
        stats = durable_platform.statistics()
        # Zero new answers were purchased by the rerun.
        assert stats["task_runs"] == runs_after_crash
        assert stats["tasks"] == NUM_IMAGES
        assert all(result["complete"] for result in data.column("result"))
        assert cache_versions(durable, "results") == [1] * NUM_IMAGES
        durable.close()


class TestCacheBatchIdempotence:
    def test_put_tasks_rerun_fills_only_the_gap(self, tmp_path):
        """Direct cache-level proof: replaying a crashed batch bumps nothing."""
        durable = SqliteEngine(str(tmp_path / "cache.db"))
        batch = {f"k{index}": {"task_id": index} for index in range(10)}

        crashing = CrashingEngine(durable, CrashPlan(crash_after_writes=4))
        cache = FaultRecoveryCache(crashing, "t")
        with pytest.raises(CrashInjected):
            cache.put_tasks(batch)
        assert durable.count("t::tasks") == 4

        rerun_cache = FaultRecoveryCache(durable, "t")
        rerun_cache.put_tasks(batch)
        assert rerun_cache.task_count() == 10
        assert [record.version for record in durable.scan("t::tasks")] == [1] * 10
        assert rerun_cache.get_tasks(sorted(batch)) == [
            batch[key] for key in sorted(batch)
        ]
        durable.close()
