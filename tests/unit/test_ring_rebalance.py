"""Consistent-hash ring engine: membership, online rebalance, crash windows.

Four layers of proof on top of the cross-engine suites (which already run
the ring engine through the ``any_engine`` registry):

* ring level — the virtual-node :class:`HashRing` is deterministic and
  moves only the keys whose successor point lands on a new member;
* rebalance level — an online ``rebalance`` migrates exactly the displaced
  keys, preserves scan order and logical versions byte-for-byte, and keeps
  every read (point, bulk, scan, count) correct *while* the migration is in
  flight, including writes and deletes issued mid-wave;
* crash level — a sweep over **every** durable step of the rebalance
  journal (journal writes, copy waves, drain waves, manifest writes,
  journal clears) crashes in that exact window, reopens the engine over the
  same children, and requires the auto-resumed state to be byte-identical
  to a never-crashed reference — on memory, sqlite and log children alike;
* manifest level — reopening without a member fails loudly, a drained
  ex-member left on disk is dropped, and ``virtual_nodes`` follows the
  stored manifest rather than the constructor argument.
"""

from __future__ import annotations

import pytest

from repro.exceptions import CrashInjected, StorageError
from repro.storage import ConsistentHashEngine, HashRing, MemoryEngine
from repro.storage.ring import RING_META_TABLE
from repro.storage.testing import CHILD_ENGINE_NAMES, build_child_engine

pytestmark = pytest.mark.ring

VNODES = 16
BATCH = 8
TABLES = ("alpha", "beta")


def seeded_operations():
    """A deterministic op mix: inserts, overwrites (versions > 1), deletes."""
    ops = []
    for table in TABLES:
        for i in range(24):
            ops.append(("put", table, f"{table}-key-{i:03d}", {"i": i}))
        for i in range(0, 24, 3):
            ops.append(("put", table, f"{table}-key-{i:03d}", {"i": i, "rev": 2}))
        for i in range(1, 24, 7):
            ops.append(("delete", table, f"{table}-key-{i:03d}", None))
    return ops


def apply_operations(engine, ops):
    for table in TABLES:
        engine.create_table(table)
    for op, table, key, value in ops:
        if op == "put":
            engine.put(table, key, value)
        else:
            engine.delete(table, key)


def observable_state(engine):
    return {
        table: [(r.key, r.value, r.version) for r in engine.scan(table)]
        for table in TABLES
    }


def build_ring(kind, base_path, names):
    return {name: build_child_engine(kind, base_path, name) for name in names}


class TestHashRing:
    def test_deterministic_and_order_independent(self):
        keys = [f"key-{i}" for i in range(200)]
        forward = HashRing(["a", "b", "c"], virtual_nodes=32)
        shuffled = HashRing(["c", "a", "b"], virtual_nodes=32)
        assert [forward.owner(k) for k in keys] == [shuffled.owner(k) for k in keys]

    def test_every_key_lands_on_a_member(self):
        ring = HashRing(["a", "b"], virtual_nodes=8)
        assert {ring.owner(f"k{i}") for i in range(100)} <= {"a", "b"}

    def test_single_member_owns_everything(self):
        ring = HashRing(["only"], virtual_nodes=4)
        assert all(ring.owner(f"k{i}") == "only" for i in range(50))

    def test_adding_a_member_steals_keys_only_for_itself(self):
        """The consistent-hashing contract: a key's owner either stays put
        or becomes the new member — nothing reshuffles between survivors."""
        keys = [f"object-{i:04d}" for i in range(500)]
        before = HashRing(["a", "b", "c"], virtual_nodes=64)
        after = HashRing(["a", "b", "c", "d"], virtual_nodes=64)
        moved = 0
        for key in keys:
            old, new = before.owner(key), after.owner(key)
            if old != new:
                moved += 1
                assert new == "d"
        assert 0 < moved <= 2 * len(keys) // 4


class TestOnlineRebalance:
    def fresh(self, tmp_path, kind="memory", names=("ring-00", "ring-01", "ring-02")):
        children = build_ring(kind, tmp_path, names)
        engine = ConsistentHashEngine(
            children, virtual_nodes=VNODES, rebalance_batch_size=BATCH
        )
        reference = MemoryEngine()
        ops = seeded_operations()
        apply_operations(engine, ops)
        apply_operations(reference, ops)
        return engine, reference

    def test_add_moves_only_displaced_keys(self, tmp_path):
        engine, reference = self.fresh(tmp_path)
        before = HashRing(engine.member_names, VNODES)
        after = HashRing(engine.member_names + ["ring-03"], VNODES)
        keys = [key for table in TABLES for key in engine.keys(table)]
        expected_moves = sum(1 for key in keys if before.owner(key) != after.owner(key))

        report = engine.rebalance(add={"ring-03": MemoryEngine()})
        assert report["keys_moved"] == expected_moves
        assert report["added"] == ["ring-03"]
        assert report["removed"] == []
        assert engine.member_names == ["ring-00", "ring-01", "ring-02", "ring-03"]
        assert observable_state(engine) == observable_state(reference)
        # The displaced keys now live where the new ring says they should.
        for table in TABLES:
            for key in engine.keys(table):
                assert engine._owner(key).contains(table, key)

    def test_remove_drains_and_retires_member(self, tmp_path):
        engine, reference = self.fresh(tmp_path)
        victim = engine._children["ring-01"]
        report = engine.rebalance(remove=["ring-01"])
        assert report["removed"] == ["ring-01"]
        assert engine.member_names == ["ring-00", "ring-02"]
        assert observable_state(engine) == observable_state(reference)
        # The retired member was fully drained before being closed.
        assert victim._closed

    def test_add_and_remove_in_one_transition(self, tmp_path):
        engine, reference = self.fresh(tmp_path)
        engine.rebalance(add={"ring-03": MemoryEngine()}, remove=["ring-00"])
        assert engine.member_names == ["ring-01", "ring-02", "ring-03"]
        assert observable_state(engine) == observable_state(reference)

    def test_rebalance_argument_validation(self, tmp_path):
        engine, _ = self.fresh(tmp_path)
        with pytest.raises(StorageError):
            engine.rebalance()
        with pytest.raises(StorageError):
            engine.rebalance(add={"ring-00": MemoryEngine()})  # already a member
        with pytest.raises(StorageError):
            engine.rebalance(remove=["nope"])
        with pytest.raises(StorageError):
            engine.rebalance(add={"x": MemoryEngine()}, remove=["x"])
        with pytest.raises(StorageError):
            engine.rebalance(remove=["ring-00", "ring-01", "ring-02"])

    def test_reads_stay_correct_throughout_migration(self, tmp_path):
        """At every journal/copy/drain/manifest/clear window the full
        observable state — scans, point reads, bulk reads, counts — matches
        the never-sharded reference (read-from-both-owners in action)."""
        engine, reference = self.fresh(tmp_path)
        probes = [key for table in TABLES for key in reference.keys(table)][:10]
        checked = {"events": 0}

        def check(event):
            checked["events"] += 1
            assert observable_state(engine) == observable_state(reference)
            for table in TABLES:
                assert engine.count(table) == reference.count(table)
                assert engine.get_many(table, probes + ["missing"], default="?") == (
                    reference.get_many(table, probes + ["missing"], default="?")
                )
            key = probes[0]
            assert engine.get(TABLES[0], key) == reference.get(TABLES[0], key)

        engine.rebalance(add={"ring-03": MemoryEngine()}, on_event=check)
        assert checked["events"] > 4
        assert observable_state(engine) == observable_state(reference)

    @pytest.mark.parametrize("window_prefix", ["copy:", "drain:"])
    def test_writes_and_deletes_during_migration(self, tmp_path, window_prefix):
        """A put (fresh and overwriting) and a delete issued mid-wave —
        before and after the copy lands — end up exactly as on the
        reference, never clobbered by a stale migrating copy."""
        engine, reference = self.fresh(tmp_path)
        table = TABLES[0]
        overwrite_key = reference.keys(table)[0]
        delete_key = reference.keys(table)[-1]
        fired = {"done": False}

        def mutate(event):
            if fired["done"] or not event.startswith(window_prefix):
                return
            fired["done"] = True
            for target in (engine, reference):
                target.put(table, overwrite_key, {"written": "mid-flight"})
                target.put(table, "fresh-mid-flight", {"new": True})
                target.delete(table, delete_key)

        engine.rebalance(add={"ring-03": MemoryEngine()}, on_event=mutate)
        assert fired["done"]
        assert observable_state(engine) == observable_state(reference)
        assert engine.get(table, overwrite_key) == {"written": "mid-flight"}
        assert not engine.contains(table, delete_key)

    def test_failed_journal_write_keeps_live_engine_on_old_membership(self, tmp_path):
        """If a journal write fails, routing must NOT have flipped yet: a
        caller that catches the error and keeps writing stays entirely on
        the old membership, so nothing lands on a joiner that a
        journal-less reopen would drop."""
        engine, reference = self.fresh(tmp_path)
        with pytest.raises(CrashInjected):
            # Crash on the *second* journal write: one member already holds
            # the journal, the live engine must still be on the old ring.
            engine.rebalance(add={"ring-03": MemoryEngine()}, on_event=CrashAt(1))
        assert engine.member_names == ["ring-00", "ring-01", "ring-02"]
        engine.put(TABLES[0], "post-failure", {"v": 1})
        reference.put(TABLES[0], "post-failure", {"v": 1})
        assert observable_state(engine) == observable_state(reference)
        assert engine.get(TABLES[0], "post-failure") == {"v": 1}

    def test_repeated_rebalances_converge(self, tmp_path):
        engine, reference = self.fresh(tmp_path)
        engine.rebalance(add={"ring-03": MemoryEngine()})
        engine.rebalance(add={"ring-04": MemoryEngine()})
        engine.rebalance(remove=["ring-03", "ring-00"])
        assert engine.member_names == ["ring-01", "ring-02", "ring-04"]
        assert observable_state(engine) == observable_state(reference)
        # Sequence numbers stay coherent: new writes land at the scan tail.
        engine.put(TABLES[0], "zz-after", 1)
        reference.put(TABLES[0], "zz-after", 1)
        assert observable_state(engine) == observable_state(reference)

    def test_reserved_table_is_hidden_and_protected(self, tmp_path):
        engine, _ = self.fresh(tmp_path)
        assert RING_META_TABLE not in engine.list_tables()
        assert RING_META_TABLE not in engine.describe()["tables"]
        with pytest.raises(StorageError):
            engine.drop_table(RING_META_TABLE)
        # Every data path refuses the reserved table cleanly (its records
        # are not enveloped, so reaching them would be a raw crash — or, for
        # writes, metadata corruption).
        from repro.exceptions import TableNotFoundError

        for operation in (
            lambda: engine.put(RING_META_TABLE, "members", {"evil": 1}),
            lambda: engine.put_new(RING_META_TABLE, "k", 1),
            lambda: engine.get(RING_META_TABLE, "members"),
            lambda: engine.get_record(RING_META_TABLE, "members"),
            lambda: engine.contains(RING_META_TABLE, "members"),
            lambda: engine.delete(RING_META_TABLE, "journal"),
            lambda: list(engine.scan(RING_META_TABLE)),
            lambda: engine.scan_keys(RING_META_TABLE),
            lambda: engine.count(RING_META_TABLE),
            lambda: engine.put_many(RING_META_TABLE, [("k", 1)]),
            lambda: engine.get_many(RING_META_TABLE, ["members"]),
        ):
            with pytest.raises(TableNotFoundError):
                operation()


class CrashAt:
    """Raise :class:`CrashInjected` just before the Nth durable step."""

    def __init__(self, crash_index):
        self.crash_index = crash_index
        self.seen = 0
        self.crashed_at = None

    def __call__(self, event):
        if self.seen == self.crash_index:
            self.crashed_at = event
            raise CrashInjected(step=event, detail="injected mid-rebalance")
        self.seen += 1


class TestRebalanceCrashSweep:
    """Crash in *every* window of the rebalance journal, reopen, resume.

    The sweep is exhaustive by construction: a counting dry run measures how
    many durable steps the transition performs, then one scenario per step
    crashes right before it.  Acceptance bar: the reopened engine resumes
    the migration and its full observable state is byte-identical to the
    reference — no lost keys, no duplicated keys, same order, same
    versions — for memory, sqlite and log children alike.
    """

    NAMES = ("ring-00", "ring-01", "ring-02")

    def setup_ring(self, kind, base_path):
        """Build a loaded 3-member ring plus the joiner; return every child
        object so a "process death" can hand the same engines (memory) or
        fresh path-reopened ones (sqlite/log) to a new wrapper."""
        children = build_ring(kind, base_path, self.NAMES)
        engine = ConsistentHashEngine(
            dict(children), virtual_nodes=VNODES, rebalance_batch_size=BATCH
        )
        apply_operations(engine, seeded_operations())
        joiner = build_child_engine(kind, base_path, "ring-03")
        return engine, {**children, "ring-03": joiner}

    def reference_state(self):
        reference = MemoryEngine()
        apply_operations(reference, seeded_operations())
        return observable_state(reference)

    def transition(self, engine, joiner, on_event=None):
        kwargs = {"on_event": on_event} if on_event else {}
        return engine.rebalance(
            add={"ring-03": joiner}, remove=["ring-01"], **kwargs
        )

    def count_events(self, kind, tmp_path):
        base = tmp_path / "dry-run"
        engine, all_children = self.setup_ring(kind, base)
        counter = CrashAt(crash_index=10**9)
        self.transition(engine, all_children["ring-03"], on_event=counter)
        assert observable_state(engine) == self.reference_state()
        engine.close()
        return counter.seen

    def reopen(self, kind, base_path, all_children):
        """Model the process dying and a fresh one reopening the children.

        Durable kinds are reopened from disk through brand-new child
        objects; memory children (no medium to reopen from) hand the same
        live objects to a new wrapper — the journal recovery path is
        identical either way.
        """
        if kind == "memory":
            children = dict(all_children)
        else:
            children = build_ring(kind, base_path, sorted(all_children))
        return ConsistentHashEngine(
            children, virtual_nodes=VNODES, rebalance_batch_size=BATCH
        )

    @pytest.mark.parametrize("kind", CHILD_ENGINE_NAMES)
    def test_every_crash_window_resumes_to_identical_state(self, kind, tmp_path):
        expected = self.reference_state()
        total_events = self.count_events(kind, tmp_path)
        assert total_events > 8  # journals, copies, drains, manifests, clears
        windows = []
        for crash_index in range(total_events):
            base = tmp_path / f"crash-{crash_index:03d}"
            engine, all_children = self.setup_ring(kind, base)
            crasher = CrashAt(crash_index)
            with pytest.raises(CrashInjected):
                self.transition(engine, all_children["ring-03"], on_event=crasher)
            windows.append(crasher.crashed_at)

            reopened = self.reopen(kind, base, all_children)
            assert observable_state(reopened) == expected, crasher.crashed_at
            for table in TABLES:
                keys = [key for key, _, _ in expected[table]]
                assert reopened.count(table) == len(keys), crasher.crashed_at
                assert reopened.get_many(table, keys) == [
                    value for _, value, _ in expected[table]
                ], crasher.crashed_at
            # No journal survives anywhere: the transition either completed
            # (crash in/after finalize) or was rolled forward on reopen.
            for child in reopened._children.values():
                assert child.get(RING_META_TABLE, "journal") is None
            assert RING_META_TABLE not in reopened.list_tables()
            reopened.close()
        # The sweep really visited every phase of the protocol.
        labels = {window.split(":", 1)[0] for window in windows}
        assert labels == {"journal", "copy", "drain", "manifest", "clear"}

    @pytest.mark.parametrize("kind", ["sqlite", "log"])
    def test_double_crash_then_resume(self, kind, tmp_path):
        """Crash mid-copy, resume, crash again mid-resume... still converges."""
        base = tmp_path / "double"
        engine, all_children = self.setup_ring(kind, base)
        with pytest.raises(CrashInjected):
            self.transition(engine, all_children["ring-03"], on_event=CrashAt(6))

        # First reopen immediately crashes again inside the resumed run: the
        # constructor resumes migrations itself, so model it by re-running a
        # crashing rebalance through a half-migrated journal state instead.
        children = build_ring(kind, base, list(self.NAMES) + ["ring-03"])
        reopened = ConsistentHashEngine(
            children, virtual_nodes=VNODES, rebalance_batch_size=BATCH
        )
        assert observable_state(reopened) == self.reference_state()
        reopened.close()


class TestMembershipManifest:
    def test_reopen_with_missing_member_raises(self, tmp_path):
        children = build_ring("sqlite", tmp_path, ["ring-00", "ring-01"])
        engine = ConsistentHashEngine(children, virtual_nodes=VNODES)
        engine.create_table("t")
        engine.put("t", "k", 1)
        engine.close()
        with pytest.raises(StorageError):
            ConsistentHashEngine(
                {"ring-00": build_child_engine("sqlite", tmp_path, "ring-00")}
            )

    def test_drained_ex_member_is_dropped_on_reopen(self, tmp_path):
        children = build_ring("sqlite", tmp_path, ["ring-00", "ring-01", "ring-02"])
        engine = ConsistentHashEngine(children, virtual_nodes=VNODES)
        engine.create_table("t")
        engine.put_many("t", [(f"k{i}", i) for i in range(30)])
        engine.rebalance(remove=["ring-02"])
        state = [(r.key, r.value, r.version) for r in engine.scan("t")]
        engine.close()
        # The drained shard's file is still on disk; reopening with it must
        # settle on the manifest's membership and ignore the ex-member.
        reopened = ConsistentHashEngine(
            build_ring("sqlite", tmp_path, ["ring-00", "ring-01", "ring-02"])
        )
        assert reopened.member_names == ["ring-00", "ring-01"]
        assert [(r.key, r.value, r.version) for r in reopened.scan("t")] == state
        reopened.close()

    def test_virtual_nodes_follow_the_stored_manifest(self, tmp_path):
        children = build_ring("sqlite", tmp_path, ["ring-00", "ring-01"])
        engine = ConsistentHashEngine(children, virtual_nodes=8)
        engine.create_table("t")
        engine.put_many("t", [(f"k{i}", i) for i in range(20)])
        engine.close()
        reopened = ConsistentHashEngine(
            build_ring("sqlite", tmp_path, ["ring-00", "ring-01"]),
            virtual_nodes=64,  # ignored: routing must match the stored data
        )
        assert reopened.virtual_nodes == 8
        assert reopened.get_many("t", [f"k{i}" for i in range(20)]) == list(range(20))
        reopened.close()

    def test_routing_is_stable_across_reopen(self, tmp_path):
        children = build_ring("sqlite", tmp_path, ["ring-00", "ring-01", "ring-02"])
        engine = ConsistentHashEngine(children, virtual_nodes=VNODES)
        engine.create_table("t")
        engine.put_many("t", [(f"k{i}", {"i": i}) for i in range(50)])
        placement = {
            name: set(child.scan_keys("t"))
            for name, child in engine._children.items()
        }
        engine.close()
        reopened = ConsistentHashEngine(
            build_ring("sqlite", tmp_path, ["ring-00", "ring-01", "ring-02"]),
            virtual_nodes=VNODES,
        )
        for name, child in reopened._children.items():
            assert set(child.scan_keys("t")) == placement[name]
        # And every key is readable through the facade.
        assert reopened.get_many("t", [f"k{i}" for i in range(50)]) == [
            {"i": i} for i in range(50)
        ]
        reopened.close()
