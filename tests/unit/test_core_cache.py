"""Unit tests for the fault-recovery cache and the manipulation log."""

from __future__ import annotations

import pytest

from repro.core.cache import FaultRecoveryCache
from repro.core.manipulations import Manipulation, ManipulationLog


class TestCacheBulkAccess:
    def test_get_tasks_aligns_with_requested_keys(self, memory_engine):
        cache = FaultRecoveryCache(memory_engine, "imgs")
        cache.put_task("a", {"task_id": 1})
        cache.put_task("c", {"task_id": 3})
        assert cache.get_tasks(["a", "b", "c"]) == [{"task_id": 1}, None, {"task_id": 3}]

    def test_put_tasks_never_overwrites_survivors(self, memory_engine):
        cache = FaultRecoveryCache(memory_engine, "imgs")
        cache.put_task("a", {"task_id": 1})
        cache.put_tasks({"a": {"task_id": 99}, "b": {"task_id": 2}})
        assert cache.get_task("a") == {"task_id": 1}
        assert cache.get_task("b") == {"task_id": 2}
        assert memory_engine.get_record("imgs::tasks", "a").version == 1

    def test_put_and_get_results_batch(self, memory_engine):
        cache = FaultRecoveryCache(memory_engine, "imgs")
        cache.put_results({"a": {"complete": True}, "b": {"complete": True}})
        assert cache.get_results(["b", "missing", "a"]) == [
            {"complete": True}, None, {"complete": True}
        ]
        assert cache.result_count() == 2

    @pytest.mark.parametrize("num_keys", [0, 1, 1200])
    def test_all_cached_objects_pages_through_the_table(self, memory_engine, num_keys):
        cache = FaultRecoveryCache(memory_engine, "imgs")
        expected = [f"key-{index:04d}" for index in range(num_keys)]
        cache.put_tasks({key: {"task_id": index} for index, key in enumerate(expected)})
        # 1200 keys span three scan_page_size=512 pages, 0 and 1 the edges.
        assert cache.all_cached_objects() == expected
        assert cache.task_count() == num_keys

    def test_iter_cached_objects_is_lazy_per_page(self, memory_engine):
        cache = FaultRecoveryCache(memory_engine, "imgs")
        cache.put_tasks({f"k{index}": {} for index in range(5)})
        iterator = cache.iter_cached_objects()
        assert next(iterator) == "k0"


class TestCacheKeys:
    def test_key_depends_on_object_and_task_type(self):
        key_a = FaultRecoveryCache.object_key("img1", "image_label")
        key_b = FaultRecoveryCache.object_key("img1", "text_label")
        key_c = FaultRecoveryCache.object_key("img2", "image_label")
        assert key_a != key_b
        assert key_a != key_c

    def test_key_is_stable_for_equivalent_dicts(self):
        left = FaultRecoveryCache.object_key({"a": 1, "b": 2}, "t")
        right = FaultRecoveryCache.object_key({"b": 2, "a": 1}, "t")
        assert left == right


class TestCacheRoundtrips:
    def test_task_roundtrip(self, memory_engine):
        cache = FaultRecoveryCache(memory_engine, "imgs")
        assert cache.get_task("k") is None
        cache.put_task("k", {"task_id": 1})
        assert cache.get_task("k") == {"task_id": 1}
        assert cache.task_count() == 1

    def test_result_roundtrip(self, memory_engine):
        cache = FaultRecoveryCache(memory_engine, "imgs")
        assert cache.get_result("k") is None
        cache.put_result("k", [{"answer": "Yes"}])
        assert cache.get_result("k") == [{"answer": "Yes"}]
        assert cache.result_count() == 1

    def test_meta_roundtrip(self, memory_engine):
        cache = FaultRecoveryCache(memory_engine, "imgs")
        assert cache.get_meta("presenter") is None
        assert cache.get_meta("presenter", default="x") == "x"
        cache.put_meta("presenter", {"task_type": "image_label"})
        assert cache.get_meta("presenter")["task_type"] == "image_label"

    def test_tables_are_namespaced_per_crowddata_table(self, memory_engine):
        cache_a = FaultRecoveryCache(memory_engine, "a")
        cache_b = FaultRecoveryCache(memory_engine, "b")
        cache_a.put_task("k", {"id": 1})
        assert cache_b.get_task("k") is None

    def test_clear_forgets_everything(self, memory_engine):
        cache = FaultRecoveryCache(memory_engine, "imgs")
        cache.put_task("k", {"id": 1})
        cache.put_result("k", [])
        cache.clear()
        assert cache.task_count() == 0
        assert cache.result_count() == 0

    def test_all_cached_objects(self, memory_engine):
        cache = FaultRecoveryCache(memory_engine, "imgs")
        cache.put_task("k1", {"id": 1})
        cache.put_task("k2", {"id": 2})
        assert cache.all_cached_objects() == ["k1", "k2"]

    def test_describe(self, memory_engine):
        cache = FaultRecoveryCache(memory_engine, "imgs")
        cache.put_task("k", {"id": 1})
        assert cache.describe() == {"table": "imgs", "cached_tasks": 1, "cached_results": 0}

    def test_cache_survives_engine_reopen(self, tmp_path):
        from repro.storage import SqliteEngine

        path = str(tmp_path / "c.db")
        engine = SqliteEngine(path)
        cache = FaultRecoveryCache(engine, "imgs")
        cache.put_task("k", {"task_id": 5})
        engine.close()
        reopened = SqliteEngine(path)
        cache2 = FaultRecoveryCache(reopened, "imgs")
        assert cache2.get_task("k") == {"task_id": 5}
        reopened.close()


class TestManipulationLog:
    def test_records_are_sequenced(self, memory_engine):
        log = ManipulationLog(memory_engine, "imgs")
        log.record("init", rows_affected=3)
        log.record("publish_task", parameters={"n_assignments": 3})
        history = log.history()
        assert [m.sequence for m in history] == [1, 2]
        assert log.operations() == ["init", "publish_task"]

    def test_record_fields_roundtrip(self, memory_engine):
        log = ManipulationLog(memory_engine, "imgs")
        original = log.record(
            "publish_task",
            parameters={"n_assignments": 3},
            columns_added=["task"],
            rows_affected=10,
            cache_hits=4,
            timestamp=12.5,
        )
        stored = log.history()[0]
        assert stored == original
        assert stored.cache_hits == 4
        assert stored.columns_added == ["task"]

    def test_manipulation_dict_roundtrip(self):
        manipulation = Manipulation(
            sequence=1, operation="mv", parameters={"x": 1}, columns_added=["mv"],
            rows_affected=3, cache_hits=0, timestamp=1.0,
        )
        assert Manipulation.from_dict(manipulation.to_dict()) == manipulation

    def test_len_and_clear(self, memory_engine):
        log = ManipulationLog(memory_engine, "imgs")
        log.record("init")
        assert len(log) == 1
        log.clear()
        assert len(log) == 0
        assert log.history() == []

    def test_log_is_durable(self, tmp_path):
        from repro.storage import SqliteEngine

        path = str(tmp_path / "log.db")
        engine = SqliteEngine(path)
        ManipulationLog(engine, "imgs").record("init")
        engine.close()
        reopened = SqliteEngine(path)
        assert ManipulationLog(reopened, "imgs").operations() == ["init"]
        reopened.close()

    def test_sequences_continue_across_instances(self, memory_engine):
        log1 = ManipulationLog(memory_engine, "imgs")
        log1.record("init")
        log2 = ManipulationLog(memory_engine, "imgs")
        log2.record("extend")
        assert [m.sequence for m in log2.history()] == [1, 2]
