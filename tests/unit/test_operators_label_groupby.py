"""Unit tests for the CrowdLabel and CrowdGroupBy operators."""

from __future__ import annotations

import pytest

from repro import AdaptivePolicy, CrowdContext
from repro.config import ReprowdConfig, StorageConfig, WorkerPoolConfig
from repro.datasets import make_image_label_dataset
from repro.operators import CrowdGroupBy, CrowdLabel
from repro.presenters import TextLabelPresenter


def accurate_context(seed=7):
    config = ReprowdConfig(
        storage=StorageConfig(engine="memory"),
        workers=WorkerPoolConfig(size=25, mean_accuracy=0.96, accuracy_spread=0.02, seed=seed),
    )
    return CrowdContext(config=config)


@pytest.fixture
def images():
    return make_image_label_dataset(num_images=30, seed=7)


@pytest.fixture
def topics():
    texts = [f"news item {i}" for i in range(24)]
    labels = {text: ["politics", "sports", "tech"][i % 3] for i, text in enumerate(texts)}
    return texts, labels


class TestCrowdLabel:
    def test_labels_match_truth_with_accurate_workers(self, images):
        result = CrowdLabel(accurate_context(), "label").label(
            images.images, ground_truth=images.ground_truth
        )
        assert result.accuracy_against(images.labels) >= 0.9
        assert len(result.labels) == len(images.images)

    def test_multiclass_vocabulary(self, topics):
        texts, labels = topics
        result = CrowdLabel(
            accurate_context(),
            "topics",
            candidates=["politics", "sports", "tech"],
            presenter=TextLabelPresenter(candidates=["politics", "sports", "tech"]),
        ).label(texts, ground_truth=labels.get)
        assert set(result.labels) <= {"politics", "sports", "tech"}
        assert result.accuracy_against(labels) >= 0.85

    def test_confidences_align_with_rows(self, images):
        result = CrowdLabel(accurate_context(), "label").label(
            images.images, ground_truth=images.ground_truth
        )
        assert len(result.confidences) == len(images.images)
        assert all(0.0 <= confidence <= 1.0 for confidence in result.confidences)

    def test_adaptive_mode_uses_fewer_answers(self, images):
        fixed = CrowdLabel(accurate_context(), "fixed", n_assignments=5).label(
            images.images, ground_truth=images.ground_truth
        )
        adaptive = CrowdLabel(
            accurate_context(),
            "adaptive",
            adaptive=AdaptivePolicy(initial_assignments=2, max_assignments=5, confidence_threshold=0.7),
        ).label(images.images, ground_truth=images.ground_truth)
        assert adaptive.report.crowd_answers < fixed.report.crowd_answers
        assert adaptive.report.extras["adaptive"] is True
        assert adaptive.accuracy_against(images.labels) >= 0.85

    def test_report_mean_answers(self, images):
        result = CrowdLabel(accurate_context(), "label", n_assignments=3).label(
            images.images, ground_truth=images.ground_truth
        )
        assert result.report.extras["mean_answers_per_item"] == pytest.approx(3.0)

    def test_empty_items_rejected(self):
        with pytest.raises(ValueError):
            CrowdLabel(accurate_context(), "label").label([])

    def test_accuracy_requires_overlap(self, images):
        result = CrowdLabel(accurate_context(), "label").label(
            images.images, ground_truth=images.ground_truth
        )
        with pytest.raises(ValueError):
            result.accuracy_against({"unknown": "Yes"})


class TestCrowdGroupBy:
    def test_groups_partition_items(self, topics):
        texts, labels = topics
        result = CrowdGroupBy(
            accurate_context(), "groupby", candidates=["politics", "sports", "tech"]
        ).group_by(texts, ground_truth=labels.get)
        grouped_items = [item for group in result.groups.values() for item in group]
        assert sorted(grouped_items) == sorted(texts)
        assert sum(result.counts.values()) == len(texts)

    def test_counts_match_truth_with_accurate_workers(self, topics):
        texts, labels = topics
        result = CrowdGroupBy(
            accurate_context(), "groupby", candidates=["politics", "sports", "tech"]
        ).group_by(texts, ground_truth=labels.get)
        # 24 items spread evenly over 3 topics -> 8 each (small crowd noise allowed).
        for label in ("politics", "sports", "tech"):
            assert abs(result.counts[label] - 8) <= 2

    def test_every_candidate_appears_even_if_empty(self):
        texts = ["only politics story"]
        result = CrowdGroupBy(
            accurate_context(), "groupby_empty", candidates=["politics", "sports"]
        ).group_by(texts, ground_truth=lambda obj: "politics")
        assert result.counts["sports"] == 0

    def test_aggregate_function_applied_per_group(self, topics):
        texts, labels = topics
        result = CrowdGroupBy(
            accurate_context(), "groupby_agg", candidates=["politics", "sports", "tech"]
        ).group_by(texts, ground_truth=labels.get, aggregate=len)
        assert result.aggregates == result.counts

    def test_largest_group(self):
        texts = [f"item {i}" for i in range(9)]
        truth = {text: ("a" if i < 6 else "b") for i, text in enumerate(texts)}
        result = CrowdGroupBy(
            accurate_context(), "groupby_largest", candidates=["a", "b"]
        ).group_by(texts, ground_truth=truth.get)
        assert result.largest_group() == "a"

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            CrowdGroupBy(accurate_context(), "bad", candidates=[])
