"""Unit tests for adaptive redundancy, budget tracking and their CrowdData wiring."""

from __future__ import annotations

import pytest

from repro import AdaptivePolicy, BudgetExceededError, BudgetTracker, CrowdContext
from repro.datasets import make_image_label_dataset
from repro.presenters import ImageLabelPresenter
from repro.quality.adaptive import AdaptiveCollectionStats


class TestAdaptivePolicy:
    def test_defaults_are_valid(self):
        policy = AdaptivePolicy()
        assert policy.initial_assignments <= policy.max_assignments
        assert policy.min_assignments <= policy.max_assignments

    def test_invalid_combinations_rejected(self):
        with pytest.raises(ValueError):
            AdaptivePolicy(initial_assignments=5, max_assignments=3)
        with pytest.raises(ValueError):
            AdaptivePolicy(min_assignments=9, max_assignments=3)
        with pytest.raises(ValueError):
            AdaptivePolicy(confidence_threshold=1.5)
        with pytest.raises(ValueError):
            AdaptivePolicy(extra_per_round=0)

    def test_single_answer_is_never_resolved_below_min(self):
        policy = AdaptivePolicy(min_assignments=2, confidence_threshold=0.7)
        assert not policy.is_resolved(["Yes"])

    def test_unanimous_pair_is_resolved(self):
        policy = AdaptivePolicy(min_assignments=2, confidence_threshold=0.7)
        assert policy.is_resolved(["Yes", "Yes"])

    def test_split_pair_is_not_resolved(self):
        policy = AdaptivePolicy(min_assignments=2, confidence_threshold=0.7)
        assert not policy.is_resolved(["Yes", "No"])

    def test_cap_forces_resolution(self):
        policy = AdaptivePolicy(max_assignments=3, confidence_threshold=0.99)
        assert policy.is_resolved(["Yes", "No", "Yes"])

    def test_next_batch_respects_cap(self):
        policy = AdaptivePolicy(max_assignments=4, extra_per_round=3, confidence_threshold=0.99)
        assert policy.next_batch(["Yes", "No"]) == 2  # only 2 left before the cap
        assert policy.next_batch(["Yes", "No", "Yes", "No"]) == 0

    def test_wilson_mode_is_more_conservative(self):
        plain = AdaptivePolicy(confidence_threshold=0.7, use_wilson=False)
        wilson = AdaptivePolicy(confidence_threshold=0.7, use_wilson=True)
        answers = ["Yes", "Yes", "No"]
        assert plain.confidence(answers) > wilson.confidence(answers)

    def test_empty_answers_confidence_zero(self):
        assert AdaptivePolicy().confidence([]) == 0.0

    def test_stats_to_dict(self):
        stats = AdaptiveCollectionStats(rounds=2, answers_collected=10, items_resolved_early=3)
        assert stats.to_dict()["rounds"] == 2


class TestBudgetTracker:
    def test_charging_accumulates(self):
        tracker = BudgetTracker(price_per_assignment=0.05)
        tracker.charge(3, label="a")
        tracker.charge(2, label="b")
        assert tracker.spent == pytest.approx(0.25)
        assert tracker.total_assignments() == 5
        assert len(tracker.charges) == 2

    def test_budget_enforced(self):
        tracker = BudgetTracker(price_per_assignment=0.10, budget=0.50)
        tracker.charge(4)
        with pytest.raises(BudgetExceededError):
            tracker.charge(2)
        # The failed charge did not change the spend.
        assert tracker.spent == pytest.approx(0.40)
        assert tracker.remaining == pytest.approx(0.10)

    def test_can_afford(self):
        tracker = BudgetTracker(price_per_assignment=0.10, budget=0.30)
        assert tracker.can_afford(3)
        assert not tracker.can_afford(4)

    def test_unlimited_budget(self):
        tracker = BudgetTracker()
        assert tracker.can_afford(10**6)
        assert tracker.remaining is None

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BudgetTracker(price_per_assignment=0.0)
        with pytest.raises(ValueError):
            BudgetTracker(budget=-1.0)
        with pytest.raises(ValueError):
            BudgetTracker().charge(-1)

    def test_summary(self):
        tracker = BudgetTracker(price_per_assignment=0.02, budget=1.0)
        tracker.charge(10)
        summary = tracker.summary()
        assert summary["spent"] == pytest.approx(0.2)
        assert summary["assignments"] == 10


class TestAdaptiveCollection:
    @pytest.fixture
    def dataset(self):
        return make_image_label_dataset(num_images=30, seed=3)

    def test_adaptive_uses_fewer_answers_than_fixed(self, dataset):
        fixed_cc = CrowdContext.in_memory(seed=3, ground_truth=dataset.ground_truth)
        fixed = (
            fixed_cc.CrowdData(dataset.images, "fixed")
            .set_presenter(ImageLabelPresenter())
            .publish_task(n_assignments=5)
            .get_result()
        )
        fixed_answers = sum(len(r["assignments"]) for r in fixed.column("result"))

        adaptive_cc = CrowdContext.in_memory(seed=3, ground_truth=dataset.ground_truth)
        policy = AdaptivePolicy(initial_assignments=2, max_assignments=5, confidence_threshold=0.7)
        adaptive = (
            adaptive_cc.CrowdData(dataset.images, "adaptive")
            .set_presenter(ImageLabelPresenter())
            .publish_task(n_assignments=policy.initial_assignments)
            .get_result_adaptive(policy)
        )
        adaptive_answers = sum(len(r["assignments"]) for r in adaptive.column("result"))
        assert adaptive_answers < fixed_answers
        assert adaptive.last_adaptive_stats is not None
        assert adaptive.last_adaptive_stats.answers_collected == adaptive_answers

    def test_adaptive_respects_max_assignments(self, dataset):
        cc = CrowdContext.in_memory(seed=3, ground_truth=dataset.ground_truth)
        policy = AdaptivePolicy(
            initial_assignments=2, max_assignments=4, confidence_threshold=0.999
        )
        data = (
            cc.CrowdData(dataset.images, "capped")
            .set_presenter(ImageLabelPresenter())
            .publish_task(n_assignments=2)
            .get_result_adaptive(policy)
        )
        for result in data.column("result"):
            assert len(result["assignments"]) <= 4

    def test_adaptive_results_are_cached_for_rerun(self, dataset, tmp_path):
        db = str(tmp_path / "adaptive.db")
        policy = AdaptivePolicy(initial_assignments=2, max_assignments=5)

        def run():
            cc = CrowdContext.with_sqlite(db, seed=3, ground_truth=dataset.ground_truth)
            data = (
                cc.CrowdData(dataset.images, "adaptive")
                .set_presenter(ImageLabelPresenter())
                .publish_task(n_assignments=policy.initial_assignments)
                .get_result_adaptive(policy)
                .mv()
            )
            labels = data.column("mv")
            stats = cc.client.statistics()
            cc.close()
            return labels, stats

        first_labels, first_stats = run()
        second_labels, second_stats = run()
        assert first_labels == second_labels
        assert first_stats["tasks"] == len(dataset)
        assert second_stats["tasks"] == 0

    def test_adaptive_is_logged(self, dataset):
        cc = CrowdContext.in_memory(seed=3, ground_truth=dataset.ground_truth)
        data = (
            cc.CrowdData(dataset.images, "logged")
            .set_presenter(ImageLabelPresenter())
            .publish_task(n_assignments=2)
            .get_result_adaptive(AdaptivePolicy(initial_assignments=2))
        )
        last = data.manipulation_history()[-1]
        assert last.operation == "get_result_adaptive"
        assert "rounds" in last.parameters

    def test_adaptive_before_publish_rejected(self, dataset):
        cc = CrowdContext.in_memory(seed=3)
        data = cc.CrowdData(dataset.images, "bad").set_presenter(ImageLabelPresenter())
        from repro.exceptions import CrowdDataError

        with pytest.raises(CrowdDataError):
            data.get_result_adaptive()


class TestBudgetWiring:
    def test_publish_charges_budget(self):
        dataset = make_image_label_dataset(num_images=10, seed=5)
        budget = BudgetTracker(price_per_assignment=0.02)
        cc = CrowdContext.in_memory(seed=5, ground_truth=dataset.ground_truth, budget=budget)
        (
            cc.CrowdData(dataset.images, "charged")
            .set_presenter(ImageLabelPresenter())
            .publish_task(n_assignments=3)
        )
        assert budget.total_assignments() == 30
        assert budget.spent == pytest.approx(0.60)

    def test_budget_exceeded_fails_fast(self):
        dataset = make_image_label_dataset(num_images=10, seed=5)
        budget = BudgetTracker(price_per_assignment=0.10, budget=1.0)  # only 10 assignments
        cc = CrowdContext.in_memory(seed=5, ground_truth=dataset.ground_truth, budget=budget)
        data = cc.CrowdData(dataset.images, "over").set_presenter(ImageLabelPresenter())
        with pytest.raises(BudgetExceededError):
            data.publish_task(n_assignments=3)

    def test_rerun_from_cache_costs_nothing(self, tmp_path):
        dataset = make_image_label_dataset(num_images=8, seed=5)
        db = str(tmp_path / "budget.db")

        def run(budget):
            cc = CrowdContext.with_sqlite(db, seed=5, ground_truth=dataset.ground_truth, budget=budget)
            (
                cc.CrowdData(dataset.images, "reuse")
                .set_presenter(ImageLabelPresenter())
                .publish_task(n_assignments=3)
                .get_result()
            )
            cc.close()

        first_budget = BudgetTracker(price_per_assignment=0.02)
        run(first_budget)
        second_budget = BudgetTracker(price_per_assignment=0.02)
        run(second_budget)
        assert first_budget.spent > 0
        assert second_budget.spent == 0.0

    def test_extend_task_redundancy_on_platform(self):
        cc = CrowdContext.in_memory(seed=5, ground_truth=lambda obj: "Yes")
        data = (
            cc.CrowdData(["a", "b"], "extend_redundancy")
            .set_presenter(ImageLabelPresenter())
            .publish_task(n_assignments=2)
            .get_result()
        )
        task_id = data.column("task")[0]["task_id"]
        task = cc.client.extend_task_redundancy(task_id, 2)
        assert task.n_assignments == 4
        assert not cc.client.is_task_complete(task_id)
        cc.client.simulate_work()
        assert len(cc.client.get_task_runs(task_id)) == 4
