"""Unit tests for repro.utils.timing."""

from __future__ import annotations

import pytest

from repro.utils.timing import SimulatedClock, Stopwatch


class TestStopwatch:
    def test_measures_elapsed_time(self):
        with Stopwatch() as sw:
            total = sum(range(1000))
        assert total == 499500
        assert sw.elapsed >= 0.0

    def test_elapsed_zero_before_use(self):
        assert Stopwatch().elapsed == 0.0


class TestSimulatedClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimulatedClock()
        clock.advance(5.0)
        clock.advance(2.5)
        assert clock.now == 7.5

    def test_tick_advances_one_second(self):
        clock = SimulatedClock()
        clock.tick()
        assert clock.now == 1.0

    def test_negative_advance_rejected(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_history_records_each_advance(self):
        clock = SimulatedClock()
        clock.advance(1.0)
        clock.advance(2.0)
        assert clock.history == [1.0, 3.0]

    def test_reset(self):
        clock = SimulatedClock()
        clock.advance(10.0)
        clock.reset()
        assert clock.now == 0.0
        assert clock.history == []
