"""RNG hygiene audit: no module-level randomness in the generator stacks.

Byte-identical replay (the scenario harness's core guarantee) only holds if
every random draw flows from a seeded ``random.Random``.  This suite does
two things:

* **statically** walks the AST of every module under ``datasets/``,
  ``workers/``, ``quality/`` and ``workload/`` and fails on any call to the
  module-level ``random.*`` functions (the process-global, unseeded RNG) or
  any ``from random import <function>`` — only ``random.Random`` itself is
  allowed;
* **dynamically** re-runs every generator twice with the same seed and
  asserts identical output, so a module that launders global randomness
  through a helper still gets caught.
"""

from __future__ import annotations

import ast
import random
from pathlib import Path

import pytest

from repro.datasets import (
    make_entity_resolution_dataset,
    make_image_label_dataset,
    make_ranking_dataset,
)
from repro.datasets.products import make_product_name, perturb_product_name
from repro.config import WorkerPoolConfig
from repro.workers.pool import WorkerPool

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Packages whose modules must never touch the process-global RNG.
AUDITED_PACKAGES = ("datasets", "workers", "quality", "workload")


def audited_files() -> list[Path]:
    files = [
        path
        for package in AUDITED_PACKAGES
        for path in sorted((SRC / package).rglob("*.py"))
    ]
    assert files, f"no sources found under {SRC}"
    return files


def global_rng_uses(path: Path) -> list[str]:
    """Return one description per unseeded-RNG use in *path*."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    problems: list[str] = []
    for node in ast.walk(tree):
        # random.<anything-but-Random>(...) — calls on the module-global RNG.
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "random"
            and node.attr != "Random"
        ):
            problems.append(f"{path.name}:{node.lineno}: random.{node.attr}")
        # from random import shuffle / choice / ... — same RNG, renamed.
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                if alias.name != "Random":
                    problems.append(
                        f"{path.name}:{node.lineno}: from random import {alias.name}"
                    )
    return problems


class TestStaticAudit:
    def test_no_module_level_random_in_generator_stacks(self):
        problems = [
            problem for path in audited_files() for problem in global_rng_uses(path)
        ]
        assert problems == [], (
            "unseeded module-level RNG found (thread a random.Random through "
            f"instead): {problems}"
        )

    def test_audit_detects_offenders(self, tmp_path):
        # The audit itself must not be vacuous.
        offender = tmp_path / "offender.py"
        offender.write_text(
            "import random\nfrom random import shuffle\n"
            "def f():\n    return random.random()\n"
        )
        found = global_rng_uses(offender)
        assert len(found) == 2


class TestSameSeedDeterminism:
    def test_image_label_dataset(self):
        first = make_image_label_dataset(num_images=50, seed=13)
        second = make_image_label_dataset(num_images=50, seed=13)
        assert first.images == second.images
        assert first.labels == second.labels

    def test_entity_resolution_dataset(self):
        first = make_entity_resolution_dataset(
            num_entities=12, duplicates_per_entity=3, seed=29
        )
        second = make_entity_resolution_dataset(
            num_entities=12, duplicates_per_entity=3, seed=29
        )
        assert first.records == second.records
        assert first.clusters == second.clusters
        assert first.matching_pairs == second.matching_pairs

    def test_ranking_dataset(self):
        first = make_ranking_dataset(num_items=15, seed=4)
        second = make_ranking_dataset(num_items=15, seed=4)
        assert first.items == second.items
        assert first.ranking() == second.ranking()

    def test_product_name_generators(self):
        first = [make_product_name(random.Random(77)) for _ in range(5)]
        second = [make_product_name(random.Random(77)) for _ in range(5)]
        assert first == second
        name = make_product_name(random.Random(1))
        assert perturb_product_name(name, random.Random(8)) == perturb_product_name(
            name, random.Random(8)
        )

    def test_worker_pool_answers(self):
        config = WorkerPoolConfig(
            size=15, spammer_fraction=0.2, adversarial_fraction=0.1, seed=41
        )

        def transcript(pool: WorkerPool) -> list[tuple[str, object, float]]:
            out = []
            for _ in range(30):
                worker = pool.draw()
                answer, latency = worker.answer(
                    ["Yes", "No"], "Yes", pool.rng, task_type="generic"
                )
                out.append((worker.worker_id, answer, latency))
            return out

        assert transcript(WorkerPool.from_config(config)) == transcript(
            WorkerPool.from_config(config)
        )

    def test_marketplace_pool_answers(self):
        from repro.workload import DEFAULT_TASK_TYPES, build_marketplace_pool

        def transcript(seed: int) -> list[tuple[str, object, float]]:
            pool = build_marketplace_pool(
                12, DEFAULT_TASK_TYPES, seed=seed, acceptance_mean=0.7
            )
            out = []
            for _ in range(20):
                worker = pool.draw()
                answer, latency = worker.answer(
                    ["A", "B"], "A", pool.rng, task_type="compare"
                )
                out.append((worker.worker_id, answer, latency))
            return out

        assert transcript(19) == transcript(19)
        assert transcript(19) != transcript(20)


pytestmark = pytest.mark.workload
