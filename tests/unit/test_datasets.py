"""Unit tests for the synthetic dataset generators."""

from __future__ import annotations

import random

import pytest

from repro.datasets import (
    make_entity_resolution_dataset,
    make_image_label_dataset,
    make_ranking_dataset,
)
from repro.datasets.products import make_product_name, perturb_product_name


class TestImageLabelDataset:
    def test_size_and_labels(self):
        dataset = make_image_label_dataset(num_images=30, seed=1)
        assert len(dataset) == 30
        assert set(dataset.labels.values()) <= {"Yes", "No"}
        assert all(url in dataset.labels for url in dataset.images)

    def test_positive_fraction_respected(self):
        dataset = make_image_label_dataset(num_images=1000, positive_fraction=0.8, seed=2)
        share = sum(1 for label in dataset.labels.values() if label == "Yes") / 1000
        assert share == pytest.approx(0.8, abs=0.05)

    def test_custom_candidates(self):
        dataset = make_image_label_dataset(num_images=50, candidates=["cat", "dog", "bird"], seed=3)
        assert set(dataset.labels.values()) <= {"cat", "dog", "bird"}
        assert dataset.candidates == ["cat", "dog", "bird"]

    def test_ground_truth_oracle(self):
        dataset = make_image_label_dataset(num_images=5, seed=4)
        url = dataset.images[0]
        assert dataset.ground_truth(url) == dataset.labels[url]
        assert dataset.ground_truth("unknown") is None

    def test_deterministic_given_seed(self):
        a = make_image_label_dataset(num_images=20, seed=5)
        b = make_image_label_dataset(num_images=20, seed=5)
        assert a.images == b.images and a.labels == b.labels

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            make_image_label_dataset(num_images=0)
        with pytest.raises(ValueError):
            make_image_label_dataset(num_images=5, positive_fraction=2.0)


class TestEntityResolutionDataset:
    def test_cluster_structure(self):
        dataset = make_entity_resolution_dataset(num_entities=10, duplicates_per_entity=4, seed=1)
        assert len(dataset.clusters) == 10
        assert len(dataset) == 40
        assert all(len(cluster) == 4 for cluster in dataset.clusters)

    def test_matching_pairs_count(self):
        dataset = make_entity_resolution_dataset(num_entities=10, duplicates_per_entity=3, seed=1)
        # Each cluster of 3 contributes C(3,2)=3 pairs.
        assert len(dataset.matching_pairs) == 30

    def test_is_match_symmetric(self):
        dataset = make_entity_resolution_dataset(num_entities=5, duplicates_per_entity=2, seed=2)
        left, right = dataset.clusters[0]
        assert dataset.is_match(left, right)
        assert dataset.is_match(right, left)

    def test_cross_cluster_pairs_are_not_matches(self):
        dataset = make_entity_resolution_dataset(num_entities=5, duplicates_per_entity=2, seed=3)
        a = dataset.clusters[0][0]
        b = dataset.clusters[1][0]
        assert not dataset.is_match(a, b)

    def test_pair_ground_truth_oracle(self):
        dataset = make_entity_resolution_dataset(num_entities=5, duplicates_per_entity=2, seed=4)
        left, right = dataset.clusters[0]
        assert dataset.pair_ground_truth({"left_id": left, "right_id": right}) == "Yes"
        other = dataset.clusters[1][0]
        assert dataset.pair_ground_truth({"left_id": left, "right_id": other}) == "No"
        assert dataset.pair_ground_truth("not a pair") is None

    def test_records_have_name_and_attributes(self):
        dataset = make_entity_resolution_dataset(num_entities=3, duplicates_per_entity=2, seed=5)
        record = dataset.records[0]
        assert "name" in record and "brand" in record and "price" in record

    def test_extra_attributes_can_be_disabled(self):
        dataset = make_entity_resolution_dataset(
            num_entities=3, duplicates_per_entity=2, extra_attributes=False, seed=5
        )
        assert "brand" not in dataset.records[0]

    def test_duplicates_are_textually_similar_but_not_identical(self):
        dataset = make_entity_resolution_dataset(
            num_entities=20, duplicates_per_entity=2, dirtiness=0.4, seed=6
        )
        from repro.operators.blocking import default_similarity

        similarities = [
            default_similarity(dataset.records[a], dataset.records[b])
            for a, b in dataset.matching_pairs
        ]
        assert sum(similarities) / len(similarities) > 0.4

    def test_deterministic_given_seed(self):
        a = make_entity_resolution_dataset(num_entities=5, seed=7)
        b = make_entity_resolution_dataset(num_entities=5, seed=7)
        assert a.records == b.records


class TestRankingDataset:
    def test_hidden_order_is_strict(self):
        dataset = make_ranking_dataset(num_items=15, seed=1)
        scores = list(dataset.items.values())
        assert len(set(scores)) == len(scores)

    def test_better_and_ranking_agree(self):
        dataset = make_ranking_dataset(num_items=10, seed=2)
        ranking = dataset.ranking()
        assert dataset.better(ranking[0], ranking[-1]) == ranking[0]

    def test_pair_ground_truth(self):
        dataset = make_ranking_dataset(num_items=6, seed=3)
        best, worst = dataset.ranking()[0], dataset.ranking()[-1]
        assert dataset.pair_ground_truth({"left": best, "right": worst}) == "A"
        assert dataset.pair_ground_truth({"left": worst, "right": best}) == "B"


class TestProductVocabulary:
    def test_product_name_structure(self):
        name = make_product_name(random.Random(1))
        assert len(name.split()) == 4

    def test_perturbation_changes_text_sometimes(self):
        rng = random.Random(2)
        original = make_product_name(rng)
        perturbed = [perturb_product_name(original, rng, dirtiness=0.5) for _ in range(20)]
        assert any(p != original for p in perturbed)

    def test_zero_dirtiness_keeps_name(self):
        rng = random.Random(3)
        original = make_product_name(rng)
        assert perturb_product_name(original, rng, dirtiness=0.0) == original
