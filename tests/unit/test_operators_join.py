"""Unit tests for the crowdsourced join operators (CrowdER and transitive)."""

from __future__ import annotations

import pytest

from repro import CrowdContext
from repro.datasets import make_entity_resolution_dataset
from repro.operators import AllPairsCrowdJoin, CrowdJoin, TransitiveCrowdJoin
from repro.operators.blocking import SimilarityBlocker


@pytest.fixture
def er():
    return make_entity_resolution_dataset(num_entities=12, duplicates_per_entity=3, seed=11)


@pytest.fixture
def accurate_ctx():
    from repro.config import ReprowdConfig, StorageConfig, WorkerPoolConfig

    config = ReprowdConfig(
        storage=StorageConfig(engine="memory"),
        workers=WorkerPoolConfig(size=25, mean_accuracy=0.97, accuracy_spread=0.02, seed=7),
    )
    ctx = CrowdContext(config=config)
    yield ctx
    ctx.close()


class TestCrowdJoin:
    def test_finds_most_true_matches(self, accurate_ctx, er):
        result = CrowdJoin(accurate_ctx, "join").join(er.records, ground_truth=er.pair_ground_truth)
        precision, recall, f1 = result.precision_recall_f1(er.matching_pairs)
        assert precision >= 0.9
        assert recall >= 0.85
        assert f1 >= 0.9

    def test_blocking_prunes_most_pairs(self, accurate_ctx, er):
        result = CrowdJoin(accurate_ctx, "join").join(er.records, ground_truth=er.pair_ground_truth)
        report = result.report
        assert report.total_candidates == len(er) * (len(er) - 1) // 2
        assert report.crowd_tasks < report.total_candidates / 5
        assert report.savings_fraction() > 0.8

    def test_crowd_answers_match_redundancy(self, accurate_ctx, er):
        result = CrowdJoin(accurate_ctx, "join", n_assignments=5).join(
            er.records, ground_truth=er.pair_ground_truth
        )
        assert result.report.crowd_answers == result.report.crowd_tasks * 5

    def test_decisions_cover_every_candidate_pair(self, accurate_ctx, er):
        blocker = SimilarityBlocker(threshold=0.3)
        result = CrowdJoin(accurate_ctx, "join", blocker=blocker).join(
            er.records, ground_truth=er.pair_ground_truth
        )
        expected_pairs = {
            (min(a, b), max(a, b)) for a, b, _ in blocker.block(er.records).candidate_pairs
        }
        assert set(result.decisions) == expected_pairs

    def test_empty_candidate_set_returns_no_matches(self, accurate_ctx, er):
        blocker = SimilarityBlocker(threshold=1.0)
        result = CrowdJoin(accurate_ctx, "join", blocker=blocker).join(
            er.records, ground_truth=er.pair_ground_truth
        )
        assert result.matches == set()
        assert result.report.crowd_tasks == 0

    def test_empty_records_rejected(self, accurate_ctx):
        with pytest.raises(ValueError):
            CrowdJoin(accurate_ctx, "join").join({})

    def test_invalid_n_assignments(self, accurate_ctx):
        from repro.exceptions import OperatorError

        with pytest.raises(OperatorError):
            CrowdJoin(accurate_ctx, "join", n_assignments=0)

    def test_two_sided_join(self, accurate_ctx, er):
        ids = er.record_ids()
        left = {i: er.records[i] for i in ids if i % 2 == 0}
        right = {i: er.records[i] for i in ids if i % 2 == 1}
        result = CrowdJoin(accurate_ctx, "join2").join_two_sided(
            left, right, ground_truth=er.pair_ground_truth
        )
        true_cross = {
            pair for pair in er.matching_pairs
            if (pair[0] in left and pair[1] in right) or (pair[0] in right and pair[1] in left)
        }
        _, recall, _ = result.precision_recall_f1(true_cross)
        assert recall >= 0.8

    def test_join_is_reproducible_within_shared_context(self, er, tmp_path):
        """Re-running the join against the same DB publishes zero new tasks."""
        path = str(tmp_path / "join.db")
        ctx = CrowdContext.with_sqlite(path, seed=5)
        first = CrowdJoin(ctx, "join").join(er.records, ground_truth=er.pair_ground_truth)
        tasks_after_first = ctx.client.statistics()["tasks"]
        second = CrowdJoin(ctx, "join").join(er.records, ground_truth=er.pair_ground_truth)
        assert ctx.client.statistics()["tasks"] == tasks_after_first
        assert first.matches == second.matches
        ctx.close()

    def test_crowddata_lineage_available(self, accurate_ctx, er):
        result = CrowdJoin(accurate_ctx, "join").join(er.records, ground_truth=er.pair_ground_truth)
        lineage = result.crowddata.lineage()
        assert len(lineage) == result.report.crowd_answers


class TestAllPairsCrowdJoin:
    def test_asks_about_every_pair(self, accurate_ctx):
        er_small = make_entity_resolution_dataset(num_entities=4, duplicates_per_entity=2, seed=3)
        result = AllPairsCrowdJoin(accurate_ctx, "allpairs", n_assignments=1).join(
            er_small.records, ground_truth=er_small.pair_ground_truth
        )
        n = len(er_small)
        assert result.report.crowd_tasks == n * (n - 1) // 2

    def test_costs_more_than_blocked_join(self, accurate_ctx, er):
        er_small = make_entity_resolution_dataset(num_entities=6, duplicates_per_entity=2, seed=3)
        blocked = CrowdJoin(accurate_ctx, "blocked", n_assignments=1).join(
            er_small.records, ground_truth=er_small.pair_ground_truth
        )
        brute = AllPairsCrowdJoin(CrowdContext.in_memory(seed=5), "brute", n_assignments=1).join(
            er_small.records, ground_truth=er_small.pair_ground_truth
        )
        assert brute.report.crowd_tasks > blocked.report.crowd_tasks


class TestTransitiveCrowdJoin:
    def test_never_asks_more_than_plain_crowder(self, er):
        plain = CrowdJoin(CrowdContext.in_memory(seed=7), "plain").join(
            er.records, ground_truth=er.pair_ground_truth
        )
        transitive = TransitiveCrowdJoin(CrowdContext.in_memory(seed=7), "trans").join(
            er.records, ground_truth=er.pair_ground_truth
        )
        assert transitive.report.crowd_tasks <= plain.report.crowd_tasks

    def test_inference_grows_with_cluster_size(self):
        small_clusters = make_entity_resolution_dataset(
            num_entities=12, duplicates_per_entity=2, seed=9
        )
        big_clusters = make_entity_resolution_dataset(
            num_entities=6, duplicates_per_entity=5, seed=9
        )
        small_result = TransitiveCrowdJoin(CrowdContext.in_memory(seed=9), "s").join(
            small_clusters.records, ground_truth=small_clusters.pair_ground_truth
        )
        big_result = TransitiveCrowdJoin(CrowdContext.in_memory(seed=9), "b").join(
            big_clusters.records, ground_truth=big_clusters.pair_ground_truth
        )
        assert big_result.report.inferred > small_result.report.inferred

    def test_quality_comparable_to_crowder(self, accurate_ctx, er):
        transitive = TransitiveCrowdJoin(accurate_ctx, "trans").join(
            er.records, ground_truth=er.pair_ground_truth
        )
        _, _, f1 = transitive.precision_recall_f1(er.matching_pairs)
        assert f1 >= 0.85

    def test_batch_size_one_is_sequential(self, er):
        result = TransitiveCrowdJoin(
            CrowdContext.in_memory(seed=7), "seq", batch_size=1
        ).join(er.records, ground_truth=er.pair_ground_truth)
        assert result.report.rounds == result.report.crowd_tasks

    def test_decisions_cover_all_candidates(self, accurate_ctx, er):
        blocker = SimilarityBlocker(threshold=0.3)
        result = TransitiveCrowdJoin(accurate_ctx, "trans", blocker=blocker).join(
            er.records, ground_truth=er.pair_ground_truth
        )
        candidates = blocker.block(er.records).candidate_pairs
        assert len(result.decisions) == len(candidates)
        assert result.report.crowd_tasks + result.report.inferred == len(candidates)

    def test_random_ordering_supported(self, er):
        result = TransitiveCrowdJoin(
            CrowdContext.in_memory(seed=7), "rand", ordering="random"
        ).join(er.records, ground_truth=er.pair_ground_truth)
        assert result.report.extras["ordering"] == "random"

    def test_invalid_parameters(self):
        ctx = CrowdContext.in_memory()
        with pytest.raises(ValueError):
            TransitiveCrowdJoin(ctx, "t", batch_size=0)
        with pytest.raises(ValueError):
            TransitiveCrowdJoin(ctx, "t", ordering="by_price")
