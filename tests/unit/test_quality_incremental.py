"""Incremental aggregators match their batch counterparts.

The streaming adaptive loop feeds :class:`IncrementalMajorityVote` and
:class:`OnlineDawidSkene` one page of *new* votes at a time; these suites
prove that however the vote stream is chunked, the incremental models end
up at the batch aggregators' answers:

* incremental MV is decision- and confidence-identical to the batch ``mv``
  under both tie-break modes, for every chunking of the stream;
* online Dawid-Skene, after :meth:`OnlineDawidSkene.refine`, reaches the
  batch EM fixed point — identical decisions, confidences and worker
  qualities within tolerance — even when labels and workers first appear
  mid-stream.
"""

from __future__ import annotations

import random

import pytest

from repro.exceptions import QualityControlError
from repro.quality import (
    DawidSkeneAggregator,
    IncrementalMajorityVote,
    MajorityVoteAggregator,
    OnlineDawidSkene,
)

pytestmark = pytest.mark.quality


def simulate_votes(num_items, workers, labels=("Yes", "No"), seed=1):
    """Vote table from workers with known accuracies; returns (votes, truth)."""
    rng = random.Random(seed)
    truth = {item: rng.choice(labels) for item in range(num_items)}
    votes = {}
    for item in range(num_items):
        item_votes = []
        for worker_id, accuracy in workers.items():
            if rng.random() < accuracy:
                answer = truth[item]
            else:
                answer = rng.choice([label for label in labels if label != truth[item]])
            item_votes.append((worker_id, answer))
        votes[item] = item_votes
    return votes, truth


def feed_in_chunks(aggregator, votes, chunk_size, seed=0):
    """Feed *votes* as interleaved pages of at most *chunk_size* votes per item.

    Mimics the adaptive loop: each round delivers the next slice of every
    item's run list, in a page mapping item -> new votes.
    """
    rng = random.Random(seed)
    offsets = {item: 0 for item in votes}
    while any(offsets[item] < len(votes[item]) for item in votes):
        page = {}
        items = list(votes)
        rng.shuffle(items)
        for item in items:
            start = offsets[item]
            if start >= len(votes[item]):
                continue
            take = rng.randint(1, chunk_size)
            page[item] = votes[item][start : start + take]
            offsets[item] = start + len(page[item])
        aggregator.partial_fit(page)
    return aggregator


class TestIncrementalMajorityVote:
    @pytest.mark.parametrize("tie_break", ["lexicographic", "first"])
    @pytest.mark.parametrize("chunk_size", [1, 2, 5])
    def test_matches_batch_mv_for_every_chunking(self, tie_break, chunk_size):
        workers = {f"w{i}": 0.7 for i in range(7)}
        votes, _ = simulate_votes(40, workers, labels=("A", "B", "C"), seed=3)
        incremental = feed_in_chunks(
            IncrementalMajorityVote(tie_break=tie_break), votes, chunk_size
        )
        batch = MajorityVoteAggregator(tie_break=tie_break).aggregate(votes)
        streamed = incremental.result()
        assert streamed.decisions == batch.decisions
        assert streamed.confidences == pytest.approx(batch.confidences)
        assert streamed.method == "mv"

    def test_first_tie_break_tracks_submission_order_across_updates(self):
        # The tying answers arrive in different updates: "first" must pick
        # the globally first-submitted one, not the first of the last page.
        incremental = IncrementalMajorityVote(tie_break="first")
        incremental.update("item", [("w1", "B")])
        incremental.update("item", [("w2", "A")])
        assert incremental.decision("item") == "B"
        # Lexicographic would have answered "A" for the same stream.
        lexicographic = IncrementalMajorityVote()
        lexicographic.update("item", [("w1", "B"), ("w2", "A")])
        assert lexicographic.decision("item") == "A"

    def test_counts_expose_exact_tallies(self):
        incremental = IncrementalMajorityVote()
        incremental.update("item", [("w1", "Yes"), ("w2", "Yes"), ("w3", "No")])
        assert dict(incremental.counts("item")) == {"Yes": 2, "No": 1}
        assert incremental.counts("never-seen") is None
        assert incremental.confidence("item") == pytest.approx(2 / 3)

    def test_unknown_item_raises(self):
        incremental = IncrementalMajorityVote()
        with pytest.raises(QualityControlError):
            incremental.decision("missing")
        with pytest.raises(QualityControlError):
            incremental.confidence("missing")

    def test_invalid_tie_break_rejected(self):
        with pytest.raises(ValueError):
            IncrementalMajorityVote(tie_break="coin-flip")


class TestOnlineDawidSkene:
    def assert_matches_batch(self, online, votes, tol=1e-4):
        streamed = online.result()
        batch = DawidSkeneAggregator().aggregate(votes)
        assert streamed.decisions == batch.decisions
        for item in votes:
            assert streamed.confidences[item] == pytest.approx(
                batch.confidences[item], abs=tol
            )
        for worker in batch.worker_quality:
            assert streamed.worker_quality[worker] == pytest.approx(
                batch.worker_quality[worker], abs=tol
            )

    @pytest.mark.parametrize("chunk_size", [1, 3])
    def test_page_fed_model_refines_to_batch_fixed_point(self, chunk_size):
        workers = {"g1": 0.95, "g2": 0.9, "ok": 0.8, "s1": 0.55, "s2": 0.5}
        votes, truth = simulate_votes(120, workers, seed=7)
        online = feed_in_chunks(OnlineDawidSkene(), votes, chunk_size)
        self.assert_matches_batch(online, votes)
        assert online.result().accuracy_against(truth) >= 0.9

    def test_labels_and_workers_appearing_mid_stream(self):
        # The growable index maps: the third label and half the workers are
        # first seen long after the model has accumulated statistics.
        workers = {f"w{i}": 0.8 for i in range(6)}
        votes, _ = simulate_votes(60, workers, labels=("A", "B", "C"), seed=11)
        early = {item: v for item, v in votes.items() if item < 30}
        late = {item: v for item, v in votes.items() if item >= 30}
        online = OnlineDawidSkene()
        feed_in_chunks(online, early, chunk_size=2, seed=1)
        feed_in_chunks(online, late, chunk_size=2, seed=2)
        self.assert_matches_batch(online, votes)

    def test_streaming_confidence_is_usable_before_refine(self):
        workers = {f"w{i}": 0.9 for i in range(5)}
        votes, truth = simulate_votes(50, workers, seed=5)
        online = feed_in_chunks(OnlineDawidSkene(), votes, chunk_size=2)
        # Pre-refine posteriors are approximate but already decision-useful.
        correct = sum(1 for item in votes if online.decision(item) == truth[item])
        assert correct / len(votes) >= 0.9
        for item in votes:
            assert 0.0 <= online.confidence(item) <= 1.0
        assert online.counts(next(iter(votes))) is None  # model-based, no tallies

    def test_empty_update_is_a_no_op(self):
        online = OnlineDawidSkene()
        online.update("item", [])
        with pytest.raises(QualityControlError):
            online.decision("item")
        with pytest.raises(QualityControlError):
            online.result()

    def test_unknown_item_raises(self):
        online = OnlineDawidSkene()
        online.update("known", [("w1", "Yes")])
        with pytest.raises(QualityControlError):
            online.confidence("unknown")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            OnlineDawidSkene(damping=0.0)
        with pytest.raises(ValueError):
            OnlineDawidSkene(damping=1.5)
        with pytest.raises(ValueError):
            OnlineDawidSkene(smoothing=-0.1)
        with pytest.raises(ValueError):
            OnlineDawidSkene(tolerance=0.0)
        with pytest.raises(ValueError):
            OnlineDawidSkene(max_iterations=0)

    def test_undamped_updates_also_converge(self):
        workers = {f"w{i}": 0.85 for i in range(5)}
        votes, _ = simulate_votes(40, workers, seed=13)
        online = feed_in_chunks(OnlineDawidSkene(damping=1.0), votes, chunk_size=2)
        # Undamped streaming approaches the fixed point along a different
        # trajectory, so the 1e-6 posterior-delta stop leaves the genuinely
        # ambiguous items (confidence near 0.5) a few hundredths away from
        # the batch numbers; decisions still agree exactly.
        self.assert_matches_batch(online, votes, tol=5e-2)
