"""Replicated ring placement (replicas > 1): failover, kill sweeps, repair.

Five layers of proof on top of the rebalance suites (which pin the R=1
behaviour) and the cross-engine suites (which run the ``ring-r2`` registry
entry through every equivalence property):

* ring level — :meth:`HashRing.successors` places every key on exactly R
  *distinct* members, agrees with :meth:`HashRing.owner` on the first
  successor, and refuses R > member count (`ConfigurationError`, never
  silent under-replication) — including the degenerate rings: a single
  member and ``virtual_nodes=1``;
* placement level — write-all really writes all: every key's envelope sits
  on exactly its R successors after puts, overwrites, batches and deletes;
* kill level — an **exhaustive kill-window sweep**: for every member and
  every operation boundary of a seeded workload, the member is killed at
  that exact point (``mark_down`` — the engine object is abandoned, not
  closed, modelling SIGKILL) and the surviving ring must serve scans, point
  reads and bulk reads byte-identical to a never-failed run, keep accepting
  writes, and — reopened with the dead member back — sync it and restore
  full placement.  On memory and sqlite children alike;
* degraded level — opening with a member missing warns and serves; opening
  beyond the R-1 tolerance raises; ``repair()`` re-replicates;
* rebalance level — membership changes preserve the R-successor invariant,
  survive a member killed mid-wave, allow replacing a dead member, and a
  crash sweep over every durable step of an R=2 transition resumes to
  byte-identical state.
"""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ConfigurationError, CrashInjected, StorageError
from repro.storage import (
    ConsistentHashEngine,
    DegradedRingWarning,
    HashRing,
    MemoryEngine,
)
from repro.storage.ring import RING_META_TABLE
from repro.storage.testing import build_child_engine

pytestmark = [pytest.mark.ring, pytest.mark.replica]

VNODES = 16
BATCH = 8
TABLE = "chaos"
NAMES = ("ring-00", "ring-01", "ring-02")
SWEEP_KINDS = ("memory", "sqlite")


def seeded_operations():
    """A compact deterministic mix: inserts, overwrites, deletes."""
    ops = []
    for i in range(12):
        ops.append(("put", f"key-{i:03d}", {"i": i}))
    for i in range(0, 12, 3):
        ops.append(("put", f"key-{i:03d}", {"i": i, "rev": 2}))
    for i in range(1, 12, 4):
        ops.append(("delete", f"key-{i:03d}", None))
    return ops


def apply_operations(engine, ops):
    engine.create_table(TABLE)
    for op, key, value in ops:
        if op == "put":
            engine.put(TABLE, key, value)
        else:
            engine.delete(TABLE, key)


def observable_state(engine):
    return [(r.key, r.value, r.version) for r in engine.scan(TABLE)]


def build_children(kind, base_path, names=NAMES):
    return {name: build_child_engine(kind, base_path, name) for name in names}


def assert_full_placement(engine, table=TABLE):
    """Every live key sits on exactly its R ring successors — no more, no
    less — at the version the facade reports."""
    for record in engine.scan(table):
        replica_set = set(engine._replica_names(record.key))
        for name, child in engine._children.items():
            envelope = child.get(table, record.key)
            if name in replica_set:
                assert envelope is not None, (record.key, name)
                assert envelope["n"] == record.version, (record.key, name)
            else:
                assert envelope is None, (record.key, name)


class TestHashRingSuccessors:
    def test_first_successor_is_the_owner(self):
        ring = HashRing(["a", "b", "c", "d"], virtual_nodes=32)
        for i in range(200):
            key = f"k{i}"
            assert ring.successors(key, 1) == [ring.owner(key)]
            assert ring.successors(key, 2)[0] == ring.owner(key)

    def test_successors_are_distinct_members(self):
        ring = HashRing(["a", "b", "c", "d"], virtual_nodes=32)
        for i in range(200):
            names = ring.successors(f"k{i}", 3)
            assert len(names) == 3
            assert len(set(names)) == 3
            assert set(names) <= {"a", "b", "c", "d"}

    def test_single_member_ring(self):
        ring = HashRing(["only"], virtual_nodes=4)
        assert ring.successors("anything", 1) == ["only"]
        with pytest.raises(ConfigurationError):
            ring.successors("anything", 2)

    def test_virtual_nodes_one(self):
        """The degenerate one-point-per-member ring still places every key
        on R distinct members, deterministically."""
        ring = HashRing(["a", "b", "c"], virtual_nodes=1)
        again = HashRing(["c", "b", "a"], virtual_nodes=1)
        for i in range(100):
            key = f"k{i}"
            names = ring.successors(key, 2)
            assert len(set(names)) == 2
            assert again.successors(key, 2) == names
            assert ring.owner(key) == names[0]

    def test_more_replicas_than_members_raises(self):
        ring = HashRing(["a", "b"], virtual_nodes=8)
        with pytest.raises(ConfigurationError):
            ring.successors("k", 3)
        with pytest.raises(ConfigurationError):
            ring.successors("k", 0)

    def test_engine_refuses_more_replicas_than_members(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ConsistentHashEngine(
                {"a": MemoryEngine(), "b": MemoryEngine()}, replicas=3
            )
        with pytest.raises(ConfigurationError):
            ConsistentHashEngine({"a": MemoryEngine()}, replicas=0)

    def test_virtual_nodes_one_engine_end_to_end(self):
        engine = ConsistentHashEngine(
            {name: MemoryEngine() for name in NAMES}, virtual_nodes=1, replicas=2
        )
        apply_operations(engine, seeded_operations())
        reference = MemoryEngine()
        apply_operations(reference, seeded_operations())
        assert observable_state(engine) == observable_state(reference)
        assert_full_placement(engine)
        engine.close()


class TestReplicatedPlacement:
    def fresh(self, replicas=2):
        engine = ConsistentHashEngine(
            {name: MemoryEngine() for name in NAMES},
            virtual_nodes=VNODES,
            replicas=replicas,
        )
        reference = MemoryEngine()
        ops = seeded_operations()
        apply_operations(engine, ops)
        apply_operations(reference, ops)
        return engine, reference

    def test_every_key_on_exactly_r_members(self):
        engine, reference = self.fresh()
        assert observable_state(engine) == observable_state(reference)
        assert_full_placement(engine)
        # Write amplification is exactly R: total child records = keys * 2.
        live = engine.count(TABLE)
        total = sum(child.count(TABLE) for child in engine._children.values())
        assert total == live * 2
        engine.close()

    def test_put_many_fans_to_all_replicas(self):
        engine, _ = self.fresh()
        records = engine.put_many(
            TABLE, [(f"bulk-{i}", {"b": i}) for i in range(20)]
        )
        assert len(records) == 20
        assert_full_placement(engine)
        engine.close()

    def test_delete_removes_every_replica(self):
        engine, reference = self.fresh()
        for key in list(reference.keys(TABLE))[:5]:
            assert engine.delete(TABLE, key)
            reference.delete(TABLE, key)
            for child in engine._children.values():
                assert child.get(TABLE, key) is None
        assert observable_state(engine) == observable_state(reference)
        engine.close()

    def test_describe_reports_replication(self):
        engine, _ = self.fresh()
        description = engine.describe()
        assert description["replicas"] == 2
        assert description["down"] == []
        engine.mark_down("ring-01")
        assert engine.describe()["down"] == ["ring-01"]
        assert engine.down_members == ["ring-01"]
        engine.close()


class TestMarkDownValidation:
    def test_r1_ring_cannot_lose_anyone(self):
        engine = ConsistentHashEngine(
            {name: MemoryEngine() for name in NAMES}, virtual_nodes=VNODES
        )
        with pytest.raises(StorageError):
            engine.mark_down("ring-00")
        engine.close()

    def test_unknown_member_raises(self):
        engine = ConsistentHashEngine(
            {name: MemoryEngine() for name in NAMES},
            virtual_nodes=VNODES,
            replicas=2,
        )
        with pytest.raises(StorageError):
            engine.mark_down("nope")
        engine.close()

    def test_tolerance_is_r_minus_one(self):
        engine = ConsistentHashEngine(
            {name: MemoryEngine() for name in NAMES},
            virtual_nodes=VNODES,
            replicas=2,
        )
        engine.mark_down("ring-00")
        with pytest.raises(StorageError):
            engine.mark_down("ring-01")
        with pytest.raises(StorageError):  # already down
            engine.mark_down("ring-00")
        engine.close()


class TestKillWindowSweep:
    """Kill every member at every operation boundary; nothing may change.

    The sweep is exhaustive by construction: the seeded workload has W
    operations, and for each of the three members one scenario per boundary
    0..W applies that many operations, kills the member (``mark_down`` —
    modelling SIGKILL: the child engine object is simply abandoned), applies
    the rest against the survivors, and requires the full observable state
    to be byte-identical to a never-failed reference.  Each scenario then
    reopens the ring with the dead member back (memory children hand the
    same stale object to the new wrapper; sqlite children reopen from disk)
    and requires the returning-member sync to restore both the state and
    the exact R-successor placement.
    """

    @pytest.mark.parametrize("kind", SWEEP_KINDS)
    def test_every_kill_window_is_invisible(self, kind, tmp_path):
        ops = seeded_operations()
        reference = MemoryEngine()
        apply_operations(reference, ops)
        expected = observable_state(reference)
        expected_values = reference.get_many(
            TABLE, [key for key, _, _ in expected]
        )

        for victim in NAMES:
            for boundary in range(len(ops) + 1):
                base = tmp_path / f"{victim}-{boundary:03d}"
                children = build_children(kind, base)
                engine = ConsistentHashEngine(
                    dict(children), virtual_nodes=VNODES, replicas=2
                )
                apply_operations(engine, ops[:boundary])
                engine.mark_down(victim)
                apply_operations(engine, ops[boundary:])

                window = f"{victim}@{boundary}"
                assert observable_state(engine) == expected, window
                assert engine.count(TABLE) == len(expected), window
                assert (
                    engine.get_many(TABLE, [key for key, _, _ in expected])
                    == expected_values
                ), window
                engine.close()

                # The dead member comes back stale; the reopen must sync it
                # from the survivors before serving.
                if kind == "memory":
                    reopened_children = dict(children)
                else:
                    reopened_children = build_children(kind, base)
                    children[victim].close()
                reopened = ConsistentHashEngine(
                    reopened_children, virtual_nodes=VNODES, replicas=2
                )
                assert reopened.down_members == [], window
                assert observable_state(reopened) == expected, window
                assert_full_placement(reopened)
                reopened.close()

    def test_kill_under_concurrent_writes(self):
        """Writers keep hammering the ring while a member dies under them;
        after the dust settles (and a repair pass, the documented recovery
        for any degraded window) every acknowledged write is present at
        full replication."""
        engine = ConsistentHashEngine(
            {name: MemoryEngine() for name in NAMES},
            virtual_nodes=VNODES,
            replicas=2,
        )
        engine.create_table(TABLE)
        keys_per_writer = 120
        halfway = threading.Barrier(4)

        def writer(writer_id):
            for i in range(keys_per_writer):
                if i == keys_per_writer // 2:
                    halfway.wait()
                engine.put(TABLE, f"w{writer_id}-{i:04d}", {"w": writer_id, "i": i})

        threads = [threading.Thread(target=writer, args=(n,)) for n in range(3)]
        for thread in threads:
            thread.start()
        halfway.wait()  # all writers are mid-stream right now
        engine.mark_down("ring-01")
        for thread in threads:
            thread.join()

        engine.repair()
        expected = {
            f"w{n}-{i:04d}": {"w": n, "i": i}
            for n in range(3)
            for i in range(keys_per_writer)
        }
        assert engine.count(TABLE) == len(expected)
        for key, value in expected.items():
            assert engine.get(TABLE, key) == value
        assert_full_placement(engine)
        engine.close()


class TestDegradedOpenAndRepair:
    def loaded(self, tmp_path, names=NAMES):
        children = build_children("sqlite", tmp_path, names)
        engine = ConsistentHashEngine(
            dict(children), virtual_nodes=VNODES, replicas=2
        )
        apply_operations(engine, seeded_operations())
        state = observable_state(engine)
        engine.close()
        return state

    def test_open_with_one_member_missing_warns_and_serves(self, tmp_path):
        state = self.loaded(tmp_path)
        survivors = build_children("sqlite", tmp_path, NAMES[:-1])
        with pytest.warns(DegradedRingWarning):
            degraded = ConsistentHashEngine(
                survivors, virtual_nodes=VNODES, replicas=2
            )
        assert degraded.down_members == [NAMES[-1]]
        assert observable_state(degraded) == state
        # Degraded writes are acknowledged and survive the next full open.
        degraded.put(TABLE, "degraded-write", {"ok": True})
        degraded.close()
        full = ConsistentHashEngine(
            build_children("sqlite", tmp_path), virtual_nodes=VNODES, replicas=2
        )
        assert full.get(TABLE, "degraded-write") == {"ok": True}
        assert_full_placement(full)
        full.close()

    def test_open_beyond_tolerance_raises(self, tmp_path):
        self.loaded(tmp_path)
        lonely = build_children("sqlite", tmp_path, NAMES[:1])
        with pytest.raises(StorageError):
            ConsistentHashEngine(lonely, virtual_nodes=VNODES, replicas=2)

    def test_repair_heals_under_replication(self, tmp_path):
        state = self.loaded(tmp_path)
        survivors = build_children("sqlite", tmp_path, NAMES[:-1])
        with pytest.warns(DegradedRingWarning):
            degraded = ConsistentHashEngine(
                survivors, virtual_nodes=VNODES, replicas=2
            )
        degraded.put(TABLE, "only-on-survivors", {"v": 1})
        degraded.close()
        # Full reopen syncs the returning member; repair() is then a no-op
        # (the sync already restored placement) and stays idempotent.
        full = ConsistentHashEngine(
            build_children("sqlite", tmp_path), virtual_nodes=VNODES, replicas=2
        )
        report = full.repair()
        assert report["keys_copied"] == 0
        assert report["keys_dropped"] == 0
        assert_full_placement(full)
        assert observable_state(full) == [
            record for record in observable_state(full)
        ]
        assert {key for key, _, _ in observable_state(full)} == (
            {key for key, _, _ in state} | {"only-on-survivors"}
        )
        full.close()

    def test_repair_reports_work_after_runtime_kill(self):
        engine = ConsistentHashEngine(
            {name: MemoryEngine() for name in NAMES},
            virtual_nodes=VNODES,
            replicas=2,
        )
        apply_operations(engine, seeded_operations())
        engine.mark_down("ring-02")
        engine.put(TABLE, "while-down", {"v": 1})
        # Bring a *fresh, empty* replacement back under the same name: every
        # key whose replica set includes it must be copied over.
        engine._children["ring-02"] = MemoryEngine()
        engine._children["ring-02"].create_table(RING_META_TABLE)
        engine._rebuild_membership()
        events = []
        report = engine.repair(on_event=events.append)
        assert report["keys_copied"] > 0
        assert any(event.startswith("repair:") for event in events)
        assert_full_placement(engine)
        second = engine.repair()
        assert second["keys_copied"] == 0 and second["keys_dropped"] == 0
        engine.close()


class TestReturningMemberSync:
    def test_zombie_keys_and_stale_values_are_reconciled(self, tmp_path):
        children = build_children("sqlite", tmp_path)
        engine = ConsistentHashEngine(
            dict(children), virtual_nodes=VNODES, replicas=2
        )
        apply_operations(engine, seeded_operations())
        engine.mark_down("ring-01")
        engine.put(TABLE, "key-000", {"i": 0, "rev": 3})  # overwrite while down
        engine.delete(TABLE, "key-002")  # zombie on the dead member
        engine.put(TABLE, "fresh-while-down", {"new": True})
        state = observable_state(engine)
        engine.close()
        children["ring-01"].close()

        reopened = ConsistentHashEngine(
            build_children("sqlite", tmp_path), virtual_nodes=VNODES, replicas=2
        )
        assert reopened.down_members == []
        assert observable_state(reopened) == state
        assert reopened.get(TABLE, "key-000") == {"i": 0, "rev": 3}
        assert reopened.get(TABLE, "key-002") is None
        assert_full_placement(reopened)
        # The down-records were cleared everywhere: a further reopen is
        # clean (no re-sync, no accusations).
        for child in reopened._children.values():
            record = child.get(RING_META_TABLE, "down")
            assert record is None or record["names"] == []
        reopened.close()

    def test_stale_journal_on_returning_member_is_discarded(self, tmp_path):
        """A journal relic from a transition that finalized while the member
        was away must not be replayed against the newer membership."""
        children = build_children("sqlite", tmp_path)
        engine = ConsistentHashEngine(
            dict(children), virtual_nodes=VNODES, replicas=2
        )
        apply_operations(engine, seeded_operations())
        engine.rebalance(add={"ring-03": build_child_engine("sqlite", tmp_path, "ring-03")})
        state = observable_state(engine)
        engine.close()

        # Plant a stale journal (epoch older than the live manifest) on one
        # member, as if it had been down across the finalize.
        relic = build_child_engine("sqlite", tmp_path, "ring-00")
        relic.put(
            RING_META_TABLE,
            "journal",
            {
                "epoch": 1,
                "old": list(NAMES),
                "new": list(NAMES) + ["ring-03"],
                "virtual_nodes": VNODES,
                "replicas": 2,
            },
        )
        relic.close()

        reopened = ConsistentHashEngine(
            build_children("sqlite", tmp_path, NAMES + ("ring-03",)),
            virtual_nodes=VNODES,
            replicas=2,
        )
        assert observable_state(reopened) == state
        for child in reopened._children.values():
            assert child.get(RING_META_TABLE, "journal") is None
        reopened.close()


class TestReplicatedRebalance:
    def fresh(self, replicas=2, names=NAMES):
        engine = ConsistentHashEngine(
            {name: MemoryEngine() for name in names},
            virtual_nodes=VNODES,
            replicas=replicas,
            rebalance_batch_size=BATCH,
        )
        reference = MemoryEngine()
        ops = seeded_operations()
        apply_operations(engine, ops)
        apply_operations(reference, ops)
        return engine, reference

    def test_add_preserves_replica_invariant(self):
        engine, reference = self.fresh()
        engine.rebalance(add={"ring-03": MemoryEngine()})
        assert observable_state(engine) == observable_state(reference)
        assert_full_placement(engine)
        engine.close()

    def test_remove_preserves_replica_invariant(self):
        engine, reference = self.fresh(names=NAMES + ("ring-03",))
        engine.rebalance(remove=["ring-01"])
        assert observable_state(engine) == observable_state(reference)
        assert_full_placement(engine)
        engine.close()

    def test_remove_below_replica_count_raises(self):
        engine, _ = self.fresh(names=("ring-00", "ring-01"))
        with pytest.raises(StorageError):
            engine.rebalance(remove=["ring-01"])
        engine.close()

    def test_kill_mid_copy_wave(self):
        """A member dies in the middle of a migration wave (from the wave's
        own observer, the tightest possible window); the transition still
        completes and the survivors serve byte-identical state."""
        engine, reference = self.fresh()
        killed = {"done": False}

        def kill_once(event):
            if not killed["done"] and event.startswith("copy:"):
                killed["done"] = True
                engine.mark_down("ring-01")

        engine.rebalance(add={"ring-03": MemoryEngine()}, on_event=kill_once)
        assert killed["done"]
        assert engine.down_members == ["ring-01"]
        assert observable_state(engine) == observable_state(reference)
        engine.close()

    def test_kill_mid_drain_wave(self):
        engine, reference = self.fresh()
        killed = {"done": False}

        def kill_once(event):
            if not killed["done"] and event.startswith("drain:"):
                killed["done"] = True
                engine.mark_down("ring-02")

        engine.rebalance(add={"ring-03": MemoryEngine()}, on_event=kill_once)
        assert killed["done"]
        assert observable_state(engine) == observable_state(reference)
        engine.close()

    def test_dead_member_replacement(self):
        """The operational story replication exists for: a member dies, a
        fresh one joins, the dead one is removed — in one transition, with
        the survivors supplying all the data."""
        engine, reference = self.fresh()
        engine.mark_down("ring-01")
        report = engine.rebalance(
            add={"ring-03": MemoryEngine()}, remove=["ring-01"]
        )
        assert report["removed"] == ["ring-01"]
        assert engine.down_members == []
        assert engine.member_names == ["ring-00", "ring-02", "ring-03"]
        assert observable_state(engine) == observable_state(reference)
        assert_full_placement(engine)
        engine.close()


class CrashAt:
    """Raise :class:`CrashInjected` just before the Nth durable step."""

    def __init__(self, crash_index):
        self.crash_index = crash_index
        self.seen = 0
        self.crashed_at = None

    def __call__(self, event):
        if self.seen == self.crash_index:
            self.crashed_at = event
            raise CrashInjected(step=event, detail="injected mid-rebalance")
        self.seen += 1


class TestReplicatedRebalanceCrashSweep:
    """Crash in every durable window of an R=2 transition, reopen, resume.

    Same construction as the R=1 sweep in test_ring_rebalance.py: a counting
    dry run measures the durable steps, then one scenario per step crashes
    right before it and reopens over the same children.  The bar is higher
    here: besides byte-identical state, the resumed transition must leave
    every key at exactly its R successors.
    """

    def setup_ring(self, kind, base_path):
        children = build_children(kind, base_path)
        engine = ConsistentHashEngine(
            dict(children),
            virtual_nodes=VNODES,
            replicas=2,
            rebalance_batch_size=BATCH,
        )
        apply_operations(engine, seeded_operations())
        joiner = build_child_engine(kind, base_path, "ring-03")
        return engine, {**children, "ring-03": joiner}

    def reference_state(self):
        reference = MemoryEngine()
        apply_operations(reference, seeded_operations())
        return observable_state(reference)

    def transition(self, engine, joiner, on_event=None):
        kwargs = {"on_event": on_event} if on_event else {}
        return engine.rebalance(
            add={"ring-03": joiner}, remove=["ring-01"], **kwargs
        )

    def reopen(self, kind, base_path, all_children):
        if kind == "memory":
            children = dict(all_children)
        else:
            children = build_children(kind, base_path, sorted(all_children))
        return ConsistentHashEngine(
            children, virtual_nodes=VNODES, replicas=2, rebalance_batch_size=BATCH
        )

    @pytest.mark.parametrize("kind", SWEEP_KINDS)
    def test_every_crash_window_resumes_to_full_replication(self, kind, tmp_path):
        expected = self.reference_state()
        dry = tmp_path / "dry-run"
        engine, all_children = self.setup_ring(kind, dry)
        counter = CrashAt(crash_index=10**9)
        self.transition(engine, all_children["ring-03"], on_event=counter)
        assert observable_state(engine) == expected
        assert_full_placement(engine)
        engine.close()
        total_events = counter.seen
        assert total_events > 8

        windows = []
        for crash_index in range(total_events):
            base = tmp_path / f"crash-{crash_index:03d}"
            engine, all_children = self.setup_ring(kind, base)
            crasher = CrashAt(crash_index)
            with pytest.raises(CrashInjected):
                self.transition(engine, all_children["ring-03"], on_event=crasher)
            windows.append(crasher.crashed_at)

            reopened = self.reopen(kind, base, all_children)
            assert observable_state(reopened) == expected, crasher.crashed_at
            assert_full_placement(reopened)
            for child in reopened._children.values():
                assert child.get(RING_META_TABLE, "journal") is None
            reopened.close()
        labels = {window.split(":", 1)[0] for window in windows}
        assert {"journal", "copy", "drain", "manifest", "clear"} <= labels
