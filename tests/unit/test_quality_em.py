"""Unit tests for the EM-based aggregators (Dawid-Skene and one-parameter)."""

from __future__ import annotations

import random

import pytest

from repro.quality import (
    DawidSkeneAggregator,
    OneParameterEMAggregator,
    dawid_skene,
    one_parameter_em,
)


def simulate_votes(
    num_items: int,
    workers: dict[str, float],
    labels=("Yes", "No"),
    redundancy: int | None = None,
    seed: int = 1,
):
    """Build a vote table from workers with known accuracies.

    Returns (votes, truth).  Every worker answers every item unless a
    redundancy cap is given.
    """
    rng = random.Random(seed)
    truth = {item: rng.choice(labels) for item in range(num_items)}
    votes = {}
    worker_ids = list(workers)
    for item in range(num_items):
        chosen = worker_ids if redundancy is None else rng.sample(worker_ids, redundancy)
        item_votes = []
        for worker_id in chosen:
            accuracy = workers[worker_id]
            if rng.random() < accuracy:
                answer = truth[item]
            else:
                answer = rng.choice([label for label in labels if label != truth[item]])
            item_votes.append((worker_id, answer))
        votes[item] = item_votes
    return votes, truth


class TestDawidSkene:
    def test_recovers_truth_with_good_workers(self):
        workers = {f"w{i}": 0.9 for i in range(5)}
        votes, truth = simulate_votes(60, workers, seed=3)
        result = DawidSkeneAggregator().aggregate(votes)
        assert result.accuracy_against(truth) >= 0.95

    def test_beats_majority_vote_with_spammers(self):
        # 3 spammers + 2 good workers: MV is dominated by noise, EM learns
        # which workers to trust.
        workers = {"g1": 0.95, "g2": 0.95, "s1": 0.5, "s2": 0.5, "s3": 0.5}
        votes, truth = simulate_votes(150, workers, seed=5)
        from repro.quality import MajorityVoteAggregator

        em_accuracy = DawidSkeneAggregator().aggregate(votes).accuracy_against(truth)
        mv_accuracy = MajorityVoteAggregator().aggregate(votes).accuracy_against(truth)
        assert em_accuracy >= mv_accuracy

    def test_worker_quality_orders_good_above_spammer(self):
        workers = {"good": 0.95, "spam": 0.5, "ok": 0.8}
        votes, _ = simulate_votes(200, workers, seed=7)
        result = DawidSkeneAggregator().aggregate(votes)
        assert result.worker_quality["good"] > result.worker_quality["spam"]

    def test_confidences_are_probabilities(self):
        workers = {f"w{i}": 0.8 for i in range(3)}
        votes, _ = simulate_votes(20, workers, seed=9)
        result = DawidSkeneAggregator().aggregate(votes)
        assert all(0.0 <= c <= 1.0 for c in result.confidences.values())

    def test_iteration_cap_respected(self):
        workers = {f"w{i}": 0.7 for i in range(3)}
        votes, _ = simulate_votes(30, workers, seed=11)
        result = DawidSkeneAggregator(max_iterations=2).aggregate(votes)
        assert result.iterations <= 2

    def test_converges_before_cap_on_easy_problem(self):
        workers = {f"w{i}": 0.99 for i in range(5)}
        votes, _ = simulate_votes(40, workers, seed=13)
        result = DawidSkeneAggregator(max_iterations=100).aggregate(votes)
        assert result.iterations < 100

    def test_multiclass_labels(self):
        workers = {f"w{i}": 0.9 for i in range(5)}
        votes, truth = simulate_votes(60, workers, labels=("A", "B", "C"), seed=15)
        result = DawidSkeneAggregator().aggregate(votes)
        assert result.accuracy_against(truth) >= 0.9

    def test_partial_answer_matrix(self):
        # Each item answered by only 3 of 7 workers.
        workers = {f"w{i}": 0.85 for i in range(7)}
        votes, truth = simulate_votes(80, workers, redundancy=3, seed=17)
        result = DawidSkeneAggregator().aggregate(votes)
        assert result.accuracy_against(truth) >= 0.8

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DawidSkeneAggregator(max_iterations=0)
        with pytest.raises(ValueError):
            DawidSkeneAggregator(tolerance=0)
        with pytest.raises(ValueError):
            DawidSkeneAggregator(smoothing=-1)

    def test_convenience_function(self):
        votes = {"x": [("w1", "Yes"), ("w2", "Yes"), ("w3", "No")]}
        assert dawid_skene(votes)["x"] == "Yes"


class TestOneParameterEM:
    def test_recovers_truth_with_good_workers(self):
        workers = {f"w{i}": 0.9 for i in range(5)}
        votes, truth = simulate_votes(60, workers, seed=19)
        result = OneParameterEMAggregator().aggregate(votes)
        assert result.accuracy_against(truth) >= 0.95

    def test_ability_estimates_separate_good_from_bad(self):
        # A third worker is needed to break the two-worker symmetry in which
        # "trust the bad worker" is an equally good explanation of the votes.
        workers = {"good": 0.95, "bad": 0.55, "ok": 0.85}
        votes, _ = simulate_votes(200, workers, seed=21)
        result = OneParameterEMAggregator().aggregate(votes)
        assert result.worker_quality["good"] > result.worker_quality["bad"]

    def test_abilities_respect_floor(self):
        workers = {"adversary": 0.05, "good": 0.95}
        votes, _ = simulate_votes(100, workers, seed=23)
        result = OneParameterEMAggregator(ability_floor=0.1).aggregate(votes)
        assert all(0.1 <= quality <= 0.9 for quality in result.worker_quality.values())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            OneParameterEMAggregator(max_iterations=0)
        with pytest.raises(ValueError):
            OneParameterEMAggregator(ability_floor=0.6)

    def test_convenience_function(self):
        votes = {"x": [("w1", "Yes"), ("w2", "Yes"), ("w3", "No")]}
        assert one_parameter_em(votes)["x"] == "Yes"
