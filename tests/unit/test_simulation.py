"""Unit tests for metrics, crash injection and the sweep runner."""

from __future__ import annotations

import pytest

from repro.exceptions import CrashInjected
from repro.simulation import (
    CrashPlan,
    CrashingEngine,
    ExperimentRunner,
    accuracy,
    f1_score,
    pair_metrics,
    precision,
    recall,
    run_with_crashes,
)
from repro.storage import MemoryEngine


class TestMetrics:
    def test_accuracy(self):
        assert accuracy({1: "a", 2: "b"}, {1: "a", 2: "c"}) == 0.5

    def test_accuracy_ignores_missing_items(self):
        assert accuracy({1: "a", 99: "x"}, {1: "a", 2: "b"}) == 1.0

    def test_accuracy_requires_overlap(self):
        with pytest.raises(ValueError):
            accuracy({1: "a"}, {2: "b"})

    def test_precision_recall_perfect(self):
        predicted = {(1, 2), (3, 4)}
        assert precision(predicted, predicted) == 1.0
        assert recall(predicted, predicted) == 1.0
        assert f1_score(predicted, predicted) == 1.0

    def test_pair_order_is_normalised(self):
        assert precision({(2, 1)}, {(1, 2)}) == 1.0

    def test_empty_prediction_conventions(self):
        assert precision(set(), {(1, 2)}) == 1.0
        assert recall(set(), {(1, 2)}) == 0.0
        assert recall({(1, 2)}, set()) == 1.0

    def test_f1_zero_when_disjoint(self):
        assert f1_score({(1, 2)}, {(3, 4)}) == 0.0

    def test_pair_metrics_bundle(self):
        metrics = pair_metrics({(1, 2), (5, 6)}, {(1, 2), (3, 4)})
        assert metrics["precision"] == 0.5
        assert metrics["recall"] == 0.5
        assert metrics["f1"] == 0.5


class TestCrashInjection:
    def test_plan_fires_once_at_threshold(self):
        plan = CrashPlan(crash_after_writes=3)
        plan.note_write()
        plan.note_write()
        with pytest.raises(CrashInjected):
            plan.note_write()
        # Once fired, further writes do not raise again.
        plan.note_write()
        assert plan.fired

    def test_disabled_plan_never_fires(self):
        plan = CrashPlan(crash_after_writes=None)
        for _ in range(100):
            plan.note_write()
        assert not plan.fired

    def test_crashing_engine_counts_only_writes(self):
        engine = CrashingEngine(MemoryEngine(), CrashPlan(crash_after_writes=2))
        engine.create_table("t")
        engine.put("t", "a", 1)
        engine.get("t", "a")
        engine.contains("t", "a")
        with pytest.raises(CrashInjected):
            engine.put("t", "b", 2)
        # The write that triggered the crash is still durable underneath.
        assert engine.inner.get("t", "b") == 2

    def test_delete_counts_as_write_only_when_something_deleted(self):
        engine = CrashingEngine(MemoryEngine(), CrashPlan(crash_after_writes=2))
        engine.create_table("t")
        engine.put("t", "a", 1)
        engine.delete("t", "missing")  # no-op, not counted
        with pytest.raises(CrashInjected):
            engine.delete("t", "a")

    def test_run_with_crashes_reaches_completion(self):
        durable = MemoryEngine()

        def experiment(engine):
            engine.create_table("t")
            for index in range(10):
                if not engine.contains("t", f"k{index}"):
                    engine.put("t", f"k{index}", index)
            return engine.count("t")

        report = run_with_crashes(experiment, durable, crash_points=[2, 5, 8])
        # The experiment is idempotent, so each retry has less left to write;
        # the third crash point (8 writes) is never reached because only 3
        # writes remain by then — which is exactly the recovery behaviour the
        # harness is meant to surface.
        assert report.crashes == 2
        assert report.attempts == 4
        assert report.completed_result == 10

    def test_run_with_crashes_without_crash_points(self):
        durable = MemoryEngine()

        def experiment(engine):
            engine.create_table("t")
            engine.put("t", "x", 1)
            return "done"

        report = run_with_crashes(experiment, durable, crash_points=[])
        assert report.crashes == 0
        assert report.completed_result == "done"


class TestExperimentRunner:
    def test_grid_is_cartesian_product_with_seeds(self):
        runner = ExperimentRunner("sweep", base_seed=100)
        points = runner.grid(a=[1, 2], b=["x", "y", "z"])
        assert len(points) == 6
        assert points[0]["seed"] == 100
        assert points[-1]["seed"] == 105
        assert {point["a"] for point in points} == {1, 2}

    def test_run_collects_rows_in_order(self):
        runner = ExperimentRunner("sweep")
        result = runner.sweep(lambda point: {"double": point["a"] * 2}, a=[1, 2, 3])
        assert result.column("double") == [2, 4, 6]

    def test_table_rendering(self):
        runner = ExperimentRunner("my sweep")
        result = runner.sweep(lambda point: {"value": point["a"] / 3}, a=[1, 2])
        table = result.to_table(columns=["a", "value"])
        assert "my sweep" in table
        assert "0.333" in table
        assert table.count("\n") >= 3

    def test_empty_result_table(self):
        from repro.simulation.experiment import SweepResult

        assert "(no rows)" in SweepResult(name="empty").to_table()
