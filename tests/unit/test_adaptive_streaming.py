"""The streaming adaptive loop: round trips, engines, faults and budgets.

PR 10's tentpole rebuilt ``get_result_adaptive`` around the paged task-run
stream and an incremental quality model.  These suites pin its contracts:

* the loop never issues a per-task ``get_task_runs`` call — its round-trip
  bill is O(pages) per round plus one batched ``extend_tasks_redundancy``
  (CountingTransport-proven);
* the same collection runs unchanged over every durable storage engine and
  over the serial, pipelined and wire transports, and a killed run reruns
  exactly-once from the fault-recovery cache;
* regression fixes: stats count per *task* (rows sharing a deduplicated
  task are no longer double-counted), a platform that returns nothing is
  classified ``items_below_minimum`` (not "resolved early"), and a failed
  extension round charges the budget nothing (extend first, charge after).
"""

from __future__ import annotations

import math

import pytest

from repro import AdaptivePolicy, BudgetExceededError, BudgetTracker, CrowdContext
from repro.config import PlatformConfig, WorkerPoolConfig
from repro.datasets import make_image_label_dataset
from repro.exceptions import PlatformUnavailableError
from repro.platform.client import PipelinedClient, PlatformClient
from repro.platform.server import PlatformServer
from repro.platform.transport import CountingTransport, Transport
from repro.presenters import ImageLabelPresenter
from repro.quality.incremental import OnlineDawidSkene
from repro.storage.testing import build_engine
from repro.workers.pool import WorkerPool

pytestmark = pytest.mark.quality

NUM_IMAGES = 24
SEED = 17
POLICY = AdaptivePolicy(
    initial_assignments=2, max_assignments=5, min_assignments=2,
    confidence_threshold=0.7, extra_per_round=2,
)

#: The durable registry engines the adaptive cache must survive on.
ADAPTIVE_ENGINES = ("sqlite", "sharded", "ring", "ring-r2")


def make_server(seed=SEED):
    pool = WorkerPool.from_config(WorkerPoolConfig(size=20, mean_accuracy=0.85, seed=seed))
    return PlatformServer(worker_pool=pool, config=PlatformConfig(seed=seed))


def make_client(kind, transport=None, seed=SEED):
    server = make_server(seed)
    if kind == "pipelined":
        return PipelinedClient(server, transport=transport, batch_size=10, max_in_flight=4)
    return PlatformClient(server, transport=transport)


def run_adaptive(context, dataset, table="adaptive", policy=POLICY, aggregator=None):
    data = (
        context.CrowdData(dataset.images, table)
        .set_presenter(ImageLabelPresenter())
        .publish_task(n_assignments=policy.initial_assignments)
    )
    return data.get_result_adaptive(policy, aggregator=aggregator)


@pytest.fixture
def dataset():
    return make_image_label_dataset(num_images=NUM_IMAGES, seed=SEED)


class TestAcrossEnginesAndTransports:
    @pytest.mark.parametrize("engine_name", ADAPTIVE_ENGINES)
    @pytest.mark.parametrize("client_kind", ["direct", "pipelined"])
    def test_adaptive_collection_on_every_stack(
        self, tmp_path, dataset, engine_name, client_kind
    ):
        engine = build_engine(engine_name, tmp_path)
        context = CrowdContext(
            engine=engine, client=make_client(client_kind), ground_truth=dataset.ground_truth
        )
        data = run_adaptive(context, dataset)
        results = data.column("result")
        assert all(r["complete"] and r["adaptive"] for r in results)
        for result in results:
            assert (
                POLICY.min_assignments
                <= len(result["assignments"])
                <= POLICY.max_assignments
            )
        stats = data.last_adaptive_stats
        tasks = {r["task_id"] for r in results}
        assert (
            stats.items_resolved_early + stats.items_at_cap + stats.items_below_minimum
            == len(tasks)
        )
        assert stats.answers_collected == sum(len(r["assignments"]) for r in results)
        context.close()

    @pytest.mark.parametrize("engine_name", ADAPTIVE_ENGINES)
    def test_kill_and_rerun_is_exactly_once(self, tmp_path, dataset, engine_name):
        def run(client):
            engine = build_engine(engine_name, tmp_path)
            context = CrowdContext(
                engine=engine, client=client, ground_truth=dataset.ground_truth
            )
            data = run_adaptive(context, dataset)
            labels = [r["task_id"] for r in data.column("result")]
            answers = data.last_adaptive_stats.answers_collected
            context.close()
            return labels, answers

        client = make_client("direct")
        first_labels, first_answers = run(client)
        platform_runs = client.statistics()["task_runs"]
        # "Kill": the context (and its engine handles) are gone; the rerun
        # reopens the same directory against the same live platform.
        second_labels, second_answers = run(client)
        assert second_labels == first_labels
        assert client.statistics()["task_runs"] == platform_runs  # nothing re-purchased
        assert client.statistics()["tasks"] == NUM_IMAGES  # nothing re-published
        # The rerun answered everything from the cache: zero rounds run.
        assert second_answers == 0


class TestRoundTripEconomy:
    def test_no_per_task_get_task_runs_and_one_extend_per_round(
        self, tmp_path, dataset
    ):
        transport = CountingTransport()
        context = CrowdContext(
            engine=build_engine("sqlite", tmp_path),
            client=make_client("direct", transport=transport),
            ground_truth=dataset.ground_truth,
        )
        data = run_adaptive(context, dataset)
        stats = data.last_adaptive_stats
        calls = transport.calls_by_name
        # The seed behaviour this replaced: one get_task_runs per task per round.
        assert "get_task_runs" not in calls
        assert "get_task_runs_for_project" not in calls
        # Singular extensions were the other per-task storm.
        assert "extend_task_redundancy" not in calls
        # O(pages) per round (+1 stream for the final collection), with one
        # batched extension round trip for every round that bought answers.
        pages_per_sweep = math.ceil(NUM_IMAGES / data.collect_page_size)
        assert calls["get_task_runs_page"] <= (stats.rounds + 1) * pages_per_sweep
        assert calls["extend_tasks_redundancy"] <= stats.rounds
        assert stats.extensions_requested > 0
        context.close()

    def test_stats_count_tasks_not_rows(self, dataset):
        # Regression: two rows sharing one deduplicated task used to be
        # double-counted in every stats tally (and their answers twice).
        context = CrowdContext.in_memory(seed=SEED, ground_truth=lambda obj: "Yes")
        data = (
            context.CrowdData(["img-shared.png", "img-shared.png"], "shared")
            .set_presenter(ImageLabelPresenter())
            .publish_task(n_assignments=POLICY.initial_assignments)
            .get_result_adaptive(POLICY)
        )
        results = data.column("result")
        assert len(results) == 2
        assert results[0]["task_id"] == results[1]["task_id"]  # deduplicated
        stats = data.last_adaptive_stats
        assert (
            stats.items_resolved_early + stats.items_at_cap + stats.items_below_minimum
            == 1
        )
        assert stats.answers_collected == len(results[0]["assignments"])
        context.close()

    def test_unresponsive_platform_classified_below_minimum(self, dataset):
        # Regression: a platform that produces no answers used to file every
        # item under "resolved early"; it must stop (no infinite purchasing)
        # and report the items as below-minimum instead.
        context = CrowdContext.in_memory(seed=SEED, ground_truth=dataset.ground_truth)
        context.client.simulate_work = lambda **kwargs: 0
        data = run_adaptive(context, dataset)
        stats = data.last_adaptive_stats
        assert stats.items_below_minimum == NUM_IMAGES
        assert stats.items_resolved_early == 0
        assert stats.answers_collected == 0
        assert stats.rounds == 1  # the stall guard stopped the loop
        for result in data.column("result"):
            assert result["assignments"] == []
        context.close()


class FailingExtendTransport(Transport):
    """Direct transport that hard-fails every redundancy extension."""

    def __init__(self):
        self.extend_attempts = 0

    def call(self, name, method, *args, **kwargs):
        if name == "extend_tasks_redundancy":
            self.extend_attempts += 1
            raise PlatformUnavailableError("injected extension outage")
        return method(*args, **kwargs)


class TestBudgetOrdering:
    def test_failed_extension_round_charges_nothing(self, dataset):
        # Regression: the loop used to charge the budget before calling the
        # platform, so an extension outage leaked committed spend with no
        # purchased redundancy.
        budget = BudgetTracker(price_per_assignment=0.02)
        transport = FailingExtendTransport()
        context = CrowdContext(
            client=make_client("direct", transport=transport),
            ground_truth=dataset.ground_truth,
            budget=budget,
        )
        data = (
            context.CrowdData(dataset.images, "outage")
            .set_presenter(ImageLabelPresenter())
            .publish_task(n_assignments=POLICY.initial_assignments)
        )
        publish_spend = budget.spent
        assert publish_spend == pytest.approx(NUM_IMAGES * 2 * 0.02)
        with pytest.raises(PlatformUnavailableError):
            data.get_result_adaptive(POLICY)
        assert transport.extend_attempts > 0
        assert budget.spent == pytest.approx(publish_spend)
        context.close()

    def test_hard_budget_buys_affordable_prefix_then_raises(self, dataset):
        # Publish costs NUM_IMAGES * 2 assignments; leave room for only a
        # handful of extensions, so some round must overflow.
        price = 0.02
        budget = BudgetTracker(
            price_per_assignment=price, budget=(NUM_IMAGES * 2 + 6) * price
        )
        context = CrowdContext(
            client=make_client("direct"),
            ground_truth=dataset.ground_truth,
            budget=budget,
        )
        data = (
            context.CrowdData(dataset.images, "capped")
            .set_presenter(ImageLabelPresenter())
            .publish_task(n_assignments=POLICY.initial_assignments)
        )
        with pytest.raises(BudgetExceededError):
            data.get_result_adaptive(POLICY)
        # The affordable prefix was purchased and charged; never more.
        assert budget.spent <= budget.budget + 1e-9
        assert 0 < budget.total_assignments() - NUM_IMAGES * 2 <= 6
        context.close()


class TestIncrementalModels:
    def test_online_dawid_skene_drives_early_stopping(self, tmp_path, dataset):
        tracker = OnlineDawidSkene()
        context = CrowdContext(
            engine=build_engine("sqlite", tmp_path),
            client=make_client("direct"),
            ground_truth=dataset.ground_truth,
        )
        data = run_adaptive(context, dataset, aggregator=tracker)
        assert data.last_adaptive_aggregator is tracker
        aggregation = tracker.result()
        truth = {
            r["task_id"]: dataset.ground_truth(obj)
            for obj, r in zip(data.column("object"), data.column("result"))
        }
        assert aggregation.accuracy_against(truth) >= 0.8
        assert aggregation.worker_quality  # learned statistics survive
        context.close()


@pytest.mark.wire
class TestOverTheWire:
    def test_adaptive_collection_over_tcp(self, tmp_path, dataset):
        from repro.platform.wire import WireClient, WireServer

        with WireServer(make_server()) as server:
            client = WireClient(server.host, server.port)
            context = CrowdContext(
                engine=build_engine("sqlite", tmp_path),
                client=client,
                ground_truth=dataset.ground_truth,
            )
            try:
                data = run_adaptive(context, dataset)
                results = data.column("result")
                assert all(r["complete"] for r in results)
                assert data.last_adaptive_stats.extensions_requested > 0
            finally:
                context.close()
