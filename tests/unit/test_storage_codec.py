"""Pluggable record codecs: equivalence, persistence, mismatch detection.

The codec seam must be invisible above :class:`StorageEngine`: a value
round-tripped through the binary codec compares equal to the same value
round-tripped through strict JSON (including ``json.dumps``-style dict-key
coercion), every engine behaves identically under either codec, durable
engines record their codec and rediscover it on a bare reopen, and opening
with a contradicting codec raises :class:`CodecMismatchError` instead of
misreading stored bytes.  A Hypothesis layer drives random JSON values
through both codecs and through a binary-coded engine to pin the
equivalence beyond the hand-picked edge cases.
"""

from __future__ import annotations

import json
import sqlite3

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import CodecMismatchError, StorageError
from repro.storage import (
    CODECS,
    BinaryCodec,
    JsonCodec,
    LogStructuredEngine,
    SqliteEngine,
    resolve_codec,
)
from repro.storage.testing import (
    DURABLE_ENGINE_NAMES,
    ENGINE_NAMES,
    build_engine,
)

JSON_CODEC = CODECS["json"]
BINARY_CODEC = CODECS["binary"]

EDGE_VALUES = [
    None,
    True,
    False,
    0,
    -1,
    2**70,  # beyond 64-bit: the length-prefixed int must not truncate
    -(2**70),
    0.0,
    -0.0,
    1e-323,  # subnormal double
    1.7976931348623157e308,
    "",
    "plain",
    "unicode: éü ☃ \U0001f600",
    "embedded\x00null",
    [],
    {},
    [1, "two", None, [3.5, {"deep": True}]],
    {"a": 1, "b": [2, 3], "c": {"d": None}},
    {1: "int key", 2.5: "float key"},  # coerced to strings by both codecs
    {True: "bool key"},
    {None: "null key"},
]


class TestCodecUnits:
    @pytest.mark.parametrize("value", EDGE_VALUES, ids=repr)
    def test_binary_round_trip_matches_json_round_trip(self, value):
        via_json = JSON_CODEC.decode(JSON_CODEC.encode(value))
        via_binary = BINARY_CODEC.decode(BINARY_CODEC.encode(value))
        assert via_binary == via_json

    def test_encode_many_matches_encode(self):
        values = [v for v in EDGE_VALUES]
        assert BINARY_CODEC.encode_many(values) == [
            BINARY_CODEC.encode(v) for v in values
        ]
        assert JSON_CODEC.encode_many(values) == [
            JSON_CODEC.encode(v) for v in values
        ]

    def test_decode_many_matches_decode(self):
        encoded = BINARY_CODEC.encode_many(EDGE_VALUES)
        assert BINARY_CODEC.decode_many(encoded) == [
            BINARY_CODEC.decode(data) for data in encoded
        ]

    def test_mixed_dict_keys_raise_on_both_codecs(self):
        value = {1: "a", "b": 2}
        with pytest.raises(StorageError):
            JSON_CODEC.encode(value)
        with pytest.raises(StorageError):
            BINARY_CODEC.encode(value)

    def test_unencodable_values_raise_on_both_codecs(self):
        for value in (object(), {"k": object()}, [set()]):
            with pytest.raises(StorageError):
                JSON_CODEC.encode(value)
            with pytest.raises(StorageError):
                BINARY_CODEC.encode(value)

    def test_wrong_medium_is_detected(self):
        with pytest.raises(StorageError):
            JSON_CODEC.decode(BINARY_CODEC.encode({"a": 1}))
        with pytest.raises(StorageError):
            BINARY_CODEC.decode(JSON_CODEC.encode({"a": 1}))

    def test_corrupt_binary_raises_not_crashes(self):
        for data in (b"", b"Z", b"S\x10hi", b"L\x02N", b"S\xff"):
            with pytest.raises(StorageError):
                BINARY_CODEC.decode(data)
        with pytest.raises(StorageError):
            BINARY_CODEC.decode(BINARY_CODEC.encode([1, 2]) + b"extra")

    def test_resolve_codec(self):
        assert resolve_codec(None).name == "json"
        assert resolve_codec("json") is CODECS["json"]
        assert resolve_codec("binary") is CODECS["binary"]
        instance = BinaryCodec()
        assert resolve_codec(instance) is instance
        with pytest.raises(StorageError):
            resolve_codec("msgpack")
        assert isinstance(CODECS["json"], JsonCodec)

    def test_binary_is_smaller_on_task_like_payloads(self):
        payload = {
            "task_id": 123456,
            "info": {"url": "https://example.com/image-0001.png", "i": 1},
            "runs": [
                {"run_id": i, "answer": "Yes", "worker_id": f"w{i:03d}"}
                for i in range(10)
            ],
        }
        assert len(BINARY_CODEC.encode(payload)) < len(JSON_CODEC.encode(payload))


# JSON-domain values: no NaN/inf (JsonCodec would round-trip NaN != NaN).
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-(2**80), 2**80)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(
        st.text(max_size=8) | st.integers(-100, 100) | st.booleans(),
        children,
        max_size=4,
    ),
    max_leaves=12,
)


def coerced(value):
    """The canonical form both codecs must round-trip to: via strict JSON.

    ``json.dumps(sort_keys=True)`` rejects mixed-type dict keys; assume past
    those draws so the property only feeds encodable values.
    """
    try:
        return json.loads(json.dumps(value, sort_keys=True, allow_nan=False))
    except (TypeError, ValueError):
        return None


class TestCodecProperties:
    @given(value=json_values)
    @settings(max_examples=120, deadline=None)
    def test_codecs_are_one_equivalence_class(self, value):
        expected = coerced(value)
        if expected is None and value is not None:
            # Mixed dict keys (or other json.dumps rejections): both codecs
            # must refuse identically rather than diverge.
            with pytest.raises(StorageError):
                JSON_CODEC.encode(value)
            with pytest.raises(StorageError):
                BINARY_CODEC.encode(value)
            return
        assert JSON_CODEC.decode(JSON_CODEC.encode(value)) == expected
        assert BINARY_CODEC.decode(BINARY_CODEC.encode(value)) == expected

    @given(values=st.lists(json_values, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_batch_paths_match_scalar_paths(self, values):
        encodable = [v for v in values if coerced(v) is not None or v is None]
        encoded = BINARY_CODEC.encode_many(encodable)
        assert encoded == [BINARY_CODEC.encode(v) for v in encodable]
        assert BINARY_CODEC.decode_many(encoded) == [coerced(v) for v in encodable]

    @given(value=json_values)
    @settings(max_examples=40, deadline=None)
    def test_sqlite_engine_round_trips_binary_values(self, value, tmp_path_factory):
        expected = coerced(value)
        if expected is None and value is not None:
            return
        path = str(tmp_path_factory.mktemp("codec") / "b.db")
        engine = SqliteEngine(path, codec="binary")
        engine.create_table("t")
        engine.put("t", "k", value)
        assert engine.get("t", "k") == expected
        engine.close()
        reopened = SqliteEngine(path)  # codec rediscovered from meta
        assert reopened.codec.name == "binary"
        assert reopened.get("t", "k") == expected
        reopened.close()


SAMPLE = [(f"k{i:02d}", {"i": i, "text": f"value-{i}", "nest": [i, None]}) for i in range(12)]


def engine_state(engine):
    return [(r.key, r.value, r.version) for r in engine.scan("t")]


class TestEnginesUnderBinaryCodec:
    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_engine_is_codec_invariant(self, name, tmp_path):
        json_engine = build_engine(name, tmp_path / "json", codec="json")
        binary_engine = build_engine(name, tmp_path / "binary", codec="binary")
        for engine in (json_engine, binary_engine):
            engine.create_table("t")
            engine.put_many("t", SAMPLE)
            engine.put("t", "k03", {"i": 3, "rev": 2})
            engine.delete("t", "k05")
        expected = engine_state(json_engine)
        assert engine_state(binary_engine) == expected
        json_engine.close()
        binary_engine.close()
        if name in DURABLE_ENGINE_NAMES:
            # A bare reopen (no codec named) rediscovers the stored codec.
            reopened = build_engine(name, tmp_path / "binary")
            assert engine_state(reopened) == expected
            reopened.close()

    @pytest.mark.parametrize("name", DURABLE_ENGINE_NAMES)
    def test_mixed_codec_reopen_raises(self, name, tmp_path):
        engine = build_engine(name, tmp_path, codec="binary")
        engine.create_table("t")
        engine.put("t", "k", {"v": 1})
        engine.close()
        with pytest.raises(CodecMismatchError):
            build_engine(name, tmp_path, codec="json")

    def test_mismatch_error_names_both_codecs(self, tmp_path):
        path = str(tmp_path / "b.db")
        SqliteEngine(path, codec="binary").close()
        with pytest.raises(CodecMismatchError) as excinfo:
            SqliteEngine(path, codec="json")
        assert excinfo.value.stored == "binary"
        assert excinfo.value.requested == "json"
        assert excinfo.value.path == path


class TestPreCodecDatabases:
    """Databases written before the codec seam carry no codec meta; their
    records are JSON text, so they must open as implicit ``json``."""

    def strip_sqlite_meta(self, path):
        conn = sqlite3.connect(path)
        conn.execute("DELETE FROM reprowd_meta WHERE meta_key = 'codec'")
        conn.commit()
        conn.close()

    def test_sqlite_pre_codec_database_is_implicit_json(self, tmp_path):
        path = str(tmp_path / "old.db")
        engine = SqliteEngine(path)
        engine.create_table("t")
        engine.put("t", "k", {"v": 1})
        engine.close()
        self.strip_sqlite_meta(path)
        reopened = SqliteEngine(path)
        assert reopened.codec.name == "json"
        assert reopened.get("t", "k") == {"v": 1}
        reopened.close()
        self.strip_sqlite_meta(path)
        with pytest.raises(CodecMismatchError):
            SqliteEngine(path, codec="binary")

    def test_log_pre_codec_database_is_implicit_json(self, tmp_path):
        path = str(tmp_path / "old_log")
        engine = LogStructuredEngine(path, snapshot_every=50)
        engine.create_table("t")
        engine.put("t", "k", {"v": 1})
        engine.close()
        import os

        os.remove(engine.meta_path)
        reopened = LogStructuredEngine(path, snapshot_every=50)
        assert reopened.codec.name == "json"
        assert reopened.get("t", "k") == {"v": 1}
        reopened.close()
