"""Unit tests for the experiment exporter and the command-line interface."""

from __future__ import annotations

import csv
import json

import pytest

from repro import CrowdContext, ExperimentExporter
from repro.cli import main as cli_main
from repro.core.export import (
    stored_experiment_summary,
    stored_lineage,
    stored_manipulations,
    stored_tables,
)
from repro.datasets import make_image_label_dataset
from repro.exceptions import CrowdDataError
from repro.presenters import ImageLabelPresenter


@pytest.fixture
def dataset():
    return make_image_label_dataset(num_images=8, seed=5)


@pytest.fixture
def experiment_db(tmp_path, dataset):
    """A completed experiment in a SQLite file; returns (db_path, labels)."""
    db_path = str(tmp_path / "exp.db")
    cc = CrowdContext.with_sqlite(db_path, seed=5, ground_truth=dataset.ground_truth)
    data = (
        cc.CrowdData(dataset.images, "cli_table")
        .set_presenter(ImageLabelPresenter())
        .publish_task(n_assignments=3)
        .get_result()
        .mv()
    )
    labels = data.column("mv")
    cc.close()
    return db_path, labels


@pytest.fixture
def live_crowddata(dataset):
    cc = CrowdContext.in_memory(seed=5, ground_truth=dataset.ground_truth)
    data = (
        cc.CrowdData(dataset.images, "export_table")
        .set_presenter(ImageLabelPresenter())
        .publish_task(n_assignments=3)
        .get_result()
        .mv()
    )
    yield data
    cc.close()


class TestExperimentExporter:
    def test_to_dict_contains_all_sections(self, live_crowddata):
        payload = ExperimentExporter(live_crowddata).to_dict()
        assert payload["table"] == "export_table"
        assert len(payload["rows"]) == 8
        assert len(payload["lineage"]) == 24
        assert [m["operation"] for m in payload["manipulations"]][0] == "init"

    def test_to_json_roundtrips(self, live_crowddata, tmp_path):
        path = ExperimentExporter(live_crowddata).to_json(str(tmp_path / "exp.json"))
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["cache"]["cached_results"] == 8

    def test_answers_to_csv(self, live_crowddata, tmp_path):
        path = ExperimentExporter(live_crowddata).answers_to_csv(str(tmp_path / "answers.csv"))
        with open(path, newline="", encoding="utf-8") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 24
        assert {"worker_id", "answer", "task_id"} <= set(rows[0])

    def test_decisions_to_csv(self, live_crowddata, tmp_path):
        path = ExperimentExporter(live_crowddata).decisions_to_csv(str(tmp_path / "mv.csv"))
        with open(path, newline="", encoding="utf-8") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["id", "object", "mv"]
        assert len(rows) == 9

    def test_decisions_require_the_column(self, live_crowddata, tmp_path):
        with pytest.raises(CrowdDataError):
            ExperimentExporter(live_crowddata).decisions_to_csv(
                str(tmp_path / "nope.csv"), decision_column="em"
            )

    def test_answers_csv_requires_results(self, tmp_path):
        cc = CrowdContext.in_memory(seed=1)
        data = cc.CrowdData(["a"], "empty")
        with pytest.raises(CrowdDataError):
            ExperimentExporter(data).answers_to_csv(str(tmp_path / "x.csv"))
        cc.close()


class TestEngineLevelReaders:
    def test_stored_tables_and_summary(self, experiment_db):
        db_path, _ = experiment_db
        from repro.storage import SqliteEngine

        with SqliteEngine(db_path) as engine:
            assert stored_tables(engine) == ["cli_table"]
            summary = stored_experiment_summary(engine, "cli_table")
            assert summary["cached_tasks"] == 8
            assert summary["answers"] == 24
            assert "publish_task" in summary["manipulations"]
            assert len(stored_lineage(engine, "cli_table")) == 24
            assert stored_manipulations(engine, "cli_table")[0].operation == "init"

    def test_readers_tolerate_missing_tables(self, tmp_path):
        from repro.storage import SqliteEngine

        with SqliteEngine(str(tmp_path / "fresh.db")) as engine:
            assert stored_tables(engine) == []
            assert stored_lineage(engine, "nope") == []
            assert stored_manipulations(engine, "nope") == []


class TestCli:
    def test_tables_command(self, experiment_db, capsys):
        db_path, _ = experiment_db
        assert cli_main(["tables", db_path]) == 0
        assert "cli_table" in capsys.readouterr().out

    def test_describe_command(self, experiment_db, capsys):
        db_path, _ = experiment_db
        assert cli_main(["describe", db_path]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["table"] == "cli_table"
        assert payload[0]["answers"] == 24

    def test_history_command(self, experiment_db, capsys):
        db_path, _ = experiment_db
        assert cli_main(["history", db_path, "cli_table"]) == 0
        output = capsys.readouterr().out
        assert "publish_task" in output and "quality_control" in output

    def test_history_unknown_table_fails(self, experiment_db, capsys):
        db_path, _ = experiment_db
        assert cli_main(["history", db_path, "nope"]) == 1

    def test_lineage_command(self, experiment_db, capsys):
        db_path, _ = experiment_db
        assert cli_main(["lineage", db_path, "cli_table"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["answers"] == 24
        assert payload["distinct_workers"] >= 3

    def test_export_command(self, experiment_db, tmp_path, capsys):
        db_path, _ = experiment_db
        out = str(tmp_path / "export.json")
        assert cli_main(["export", db_path, "cli_table", out]) == 0
        with open(out, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["summary"]["cached_results"] == 8
        assert len(payload["lineage"]) == 24

    def test_cli_is_read_only(self, experiment_db):
        db_path, labels = experiment_db
        cli_main(["describe", db_path])
        cli_main(["lineage", db_path, "cli_table"])
        # Rerunning the experiment still reproduces the same labels.
        dataset = make_image_label_dataset(num_images=8, seed=5)
        cc = CrowdContext.with_sqlite(db_path, seed=5, ground_truth=dataset.ground_truth)
        data = (
            cc.CrowdData(dataset.images, "cli_table")
            .set_presenter(ImageLabelPresenter())
            .publish_task(n_assignments=3)
            .get_result()
            .mv()
        )
        assert data.column("mv") == labels
        cc.close()
