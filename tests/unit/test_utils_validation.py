"""Unit tests for repro.utils.validation."""

from __future__ import annotations

import pytest

from repro.utils.validation import (
    require_fraction,
    require_in,
    require_non_empty,
    require_positive,
    require_type,
    require_unique,
)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive("x", 3) == 3

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValueError, match="x"):
            require_positive("x", 0)

    def test_allows_zero_when_requested(self):
        assert require_positive("x", 0, allow_zero=True) == 0

    def test_rejects_negative_even_with_allow_zero(self):
        with pytest.raises(ValueError):
            require_positive("x", -1, allow_zero=True)


class TestRequireFraction:
    def test_accepts_bounds(self):
        assert require_fraction("p", 0.0) == 0.0
        assert require_fraction("p", 1.0) == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            require_fraction("p", 1.5)
        with pytest.raises(ValueError):
            require_fraction("p", -0.1)


class TestRequireNonEmpty:
    def test_accepts_non_empty(self):
        assert require_non_empty("items", [1]) == [1]

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="items"):
            require_non_empty("items", [])


class TestRequireIn:
    def test_accepts_member(self):
        assert require_in("mode", "a", {"a", "b"}) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ValueError, match="mode"):
            require_in("mode", "c", {"a", "b"})


class TestRequireType:
    def test_accepts_matching_type(self):
        assert require_type("n", 5, int) == 5

    def test_accepts_tuple_of_types(self):
        assert require_type("n", 5.0, (int, float)) == 5.0

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="n must be int"):
            require_type("n", "5", int)


class TestRequireUnique:
    def test_accepts_unique_values(self):
        assert require_unique("ids", [1, 2, 3]) == [1, 2, 3]

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            require_unique("ids", [1, 2, 1])
