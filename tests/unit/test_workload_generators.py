"""Unit tests for the workload generators and the marketplace model."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import ConfigurationError, NoEligibleWorkerError
from repro.workers.behavior import NoisyWorker, SpammerWorker
from repro.workers.latency import ConstantLatency, PerTypeLatency
from repro.workload import (
    DEFAULT_TASK_TYPES,
    BurstyProcess,
    DiurnalProcess,
    MarketplacePresenter,
    PoissonProcess,
    ScenarioSpec,
    SpammerWave,
    TaskType,
    ZipfKeyGenerator,
    assign_task_type,
    build_arrival_process,
    build_marketplace_pool,
    latency_summary,
    make_objects,
    marketplace_ground_truth,
    percentile,
    sla_attainment,
)

pytestmark = pytest.mark.workload


class TestArrivalProcesses:
    def test_poisson_emits_exact_count_strictly_increasing(self):
        arrivals = PoissonProcess(rate=5.0).generate(200, random.Random(3))
        assert len(arrivals) == 200
        assert [a.index for a in arrivals] == list(range(200))
        times = [a.time for a in arrivals]
        assert all(later > earlier for earlier, later in zip(times, times[1:]))
        assert times[0] > 0

    def test_same_seed_same_stream(self):
        first = PoissonProcess(2.0).generate(50, random.Random(11))
        second = PoissonProcess(2.0).generate(50, random.Random(11))
        assert first == second
        different = PoissonProcess(2.0).generate(50, random.Random(12))
        assert first != different

    def test_bursty_concentrates_arrivals_in_burst_windows(self):
        process = BurstyProcess(
            base_rate=1.0,
            burst_multiplier=20.0,
            burst_every_seconds=60.0,
            burst_duration_seconds=5.0,
        )
        arrivals = process.generate(400, random.Random(5))
        in_burst = sum(1 for a in arrivals if process.in_burst(a.time))
        # Burst windows are 1/12 of the timeline but carry 20x the rate:
        # they should hold well over half of all arrivals.
        assert in_burst / len(arrivals) > 0.5

    def test_diurnal_rate_oscillates_between_extremes(self):
        process = DiurnalProcess(base_rate=10.0, amplitude=0.8, period_seconds=100.0)
        assert process.rate_at(25.0) == pytest.approx(18.0)  # peak at T/4
        assert process.rate_at(75.0) == pytest.approx(2.0)  # trough at 3T/4
        assert process.peak_rate == pytest.approx(18.0)
        arrivals = process.generate(300, random.Random(9))
        assert len(arrivals) == 300

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            build_arrival_process("weibull", 1.0)
        with pytest.raises(ConfigurationError):
            BurstyProcess(1.0, burst_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            BurstyProcess(1.0, burst_every_seconds=5.0, burst_duration_seconds=5.0)
        with pytest.raises(ConfigurationError):
            DiurnalProcess(1.0, amplitude=1.5)
        with pytest.raises(ConfigurationError):
            PoissonProcess(3.0).generate(-1, random.Random(0))

    def test_factory_builds_each_kind(self):
        assert isinstance(build_arrival_process("poisson", 2.0), PoissonProcess)
        assert isinstance(build_arrival_process("bursty", 2.0), BurstyProcess)
        assert isinstance(build_arrival_process("diurnal", 2.0), DiurnalProcess)


class TestZipfKeys:
    def test_skew_zero_is_uniform(self):
        generator = ZipfKeyGenerator(num_keys=10, skew=0.0)
        assert generator.probabilities() == pytest.approx([0.1] * 10)

    def test_skew_concentrates_on_low_ranks(self):
        skewed = ZipfKeyGenerator(num_keys=100, skew=1.2)
        probabilities = skewed.probabilities()
        assert probabilities[0] > 0.15
        assert probabilities[0] > probabilities[1] > probabilities[50]
        assert sum(probabilities) == pytest.approx(1.0)

    def test_sample_determinism_and_key_format(self):
        generator = ZipfKeyGenerator(num_keys=50, skew=1.0)
        first = generator.sample_many(100, random.Random(21))
        second = generator.sample_many(100, random.Random(21))
        assert first == second
        assert all(key.startswith("k") and len(key) == 6 for key in first)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfKeyGenerator(num_keys=5, skew=-0.1)
        with pytest.raises(Exception):
            ZipfKeyGenerator(num_keys=0)
        with pytest.raises(ConfigurationError):
            ZipfKeyGenerator(num_keys=5).key(5)


class TestTaskTypesAndTruth:
    def test_assignment_is_deterministic_and_weight_sensitive(self):
        types = DEFAULT_TASK_TYPES
        keys = [f"k{i:05d}" for i in range(600)]
        assigned = [assign_task_type(key, types).name for key in keys]
        assert assigned == [assign_task_type(key, types).name for key in keys]
        counts = {name: assigned.count(name) for name in ("label", "compare", "transcribe")}
        # weights 3:2:1 over 600 keys — label should dominate transcribe.
        assert counts["label"] > counts["transcribe"]
        assert set(counts) == {t.name for t in types}

    def test_ground_truth_stable_and_in_candidates(self):
        truth = marketplace_ground_truth(DEFAULT_TASK_TYPES)
        objects = make_objects([f"k{i:05d}" for i in range(40)], DEFAULT_TASK_TYPES)
        by_name = {t.name: t for t in DEFAULT_TASK_TYPES}
        for obj in objects:
            answer = truth(obj)
            assert answer == truth(obj)
            assert answer in by_name[obj["type"]].candidates

    def test_task_type_validation(self):
        with pytest.raises(ConfigurationError):
            TaskType(name="", candidates=("a", "b")).validate()
        with pytest.raises(ConfigurationError):
            TaskType(name="solo", candidates=("only",)).validate()
        with pytest.raises(Exception):
            TaskType(name="bad", weight=-1.0).validate()

    def test_task_type_mapping_roundtrip(self):
        original = DEFAULT_TASK_TYPES[2]
        assert TaskType.from_mapping(original.to_mapping()) == original


class TestMarketplacePresenter:
    def test_task_info_carries_per_object_type_and_candidates(self):
        presenter = MarketplacePresenter(task_types=DEFAULT_TASK_TYPES)
        obj = {"key": "k00001", "type": "transcribe"}
        info = presenter.build_task_info(obj, true_answer="beta")
        assert info["task_type"] == "transcribe"
        assert info["candidates"] == ["alpha", "beta", "gamma", "delta"]
        assert info["_true_answer"] == "beta"

    def test_presenter_candidates_are_the_union(self):
        presenter = MarketplacePresenter(task_types=DEFAULT_TASK_TYPES)
        for candidate in ("Yes", "No", "A", "B", "alpha", "delta"):
            assert candidate in presenter.candidates
        # validate_answer must accept any type's answers.
        assert presenter.validate_answer("gamma") == "gamma"

    def test_registry_rebuild_signature_compatible(self):
        from repro.presenters.base import registry

        rebuilt = registry.build(MarketplacePresenter(task_types=DEFAULT_TASK_TYPES).describe())
        assert isinstance(rebuilt, MarketplacePresenter)

    def test_render_tolerates_template_placeholder(self):
        presenter = MarketplacePresenter(task_types=DEFAULT_TASK_TYPES)
        assert "{{object}}" in presenter.template_html()


class TestPerTypeLatency:
    def test_dispatch_and_speed(self):
        model = PerTypeLatency(
            {"fast": ConstantLatency(10.0), "slow": ConstantLatency(100.0)},
            default=ConstantLatency(50.0),
            speed=2.0,
        )
        rng = random.Random(0)
        assert model.sample(rng, task_type="fast") == pytest.approx(5.0)
        assert model.sample(rng, task_type="slow") == pytest.approx(50.0)
        assert model.sample(rng, task_type="unknown") == pytest.approx(25.0)
        assert model.sample(rng) == pytest.approx(25.0)


class TestMarketplacePool:
    def test_generation_is_deterministic(self):
        kwargs = dict(
            mean_accuracy=0.8,
            spammer_fraction=0.1,
            straggler_fraction=0.2,
            wave=SpammerWave(0.2, 0.5, 0.3),
        )
        first = build_marketplace_pool(20, DEFAULT_TASK_TYPES, seed=13, **kwargs)
        second = build_marketplace_pool(20, DEFAULT_TASK_TYPES, seed=13, **kwargs)
        assert first.worker_ids() == second.worker_ids()
        assert first.wave_worker_ids == second.wave_worker_ids
        assert [w.latency.speed for w in first] == [w.latency.speed for w in second]
        assert [w.worker_id for w in first.draw_distinct(5)] == [
            w.worker_id for w in second.draw_distinct(5)
        ]

    def test_acceptance_declines_are_counted_and_bounded(self):
        pool = build_marketplace_pool(
            10, DEFAULT_TASK_TYPES, seed=3, acceptance_mean=0.3, acceptance_spread=0.1
        )
        workers = pool.draw_distinct(3)
        assert len({w.worker_id for w in workers}) == 3
        assert pool.offers >= 3
        assert pool.declines == pool.offers - 3
        single = pool.draw(exclude=[w.worker_id for w in workers])
        assert single.worker_id not in {w.worker_id for w in workers}

    def test_full_acceptance_never_declines(self):
        pool = build_marketplace_pool(
            8, DEFAULT_TASK_TYPES, seed=5, acceptance_mean=1.0, acceptance_spread=0.0
        )
        pool.draw_distinct(4)
        pool.draw()
        assert pool.declines == 0

    def test_all_excluded_raises(self):
        pool = build_marketplace_pool(3, DEFAULT_TASK_TYPES, seed=1)
        with pytest.raises(NoEligibleWorkerError):
            pool.draw(exclude=pool.worker_ids())
        with pytest.raises(NoEligibleWorkerError):
            pool.draw_distinct(4)

    def test_spammer_wave_swaps_and_restores_behaviours(self):
        pool = build_marketplace_pool(
            10, DEFAULT_TASK_TYPES, seed=9, wave=SpammerWave(0.0, 0.5, 0.4)
        )
        original = {w.worker_id: w.behavior for w in pool}
        assert all(isinstance(b, NoisyWorker) for b in original.values())
        pool.set_wave_active(True)
        flipped = [
            worker_id
            for worker_id in pool.worker_ids()
            if isinstance(pool.worker(worker_id).behavior, SpammerWorker)
        ]
        assert sorted(flipped) == sorted(pool.wave_worker_ids)
        pool.set_wave_active(True)  # idempotent
        pool.set_wave_active(False)
        for worker_id, behavior in original.items():
            assert pool.worker(worker_id).behavior is behavior
        assert pool.wave_toggles == 2
        stats = pool.statistics()
        assert stats["wave_pool"] == 4
        assert stats["wave_toggles"] == 2

    def test_stragglers_are_slow(self):
        pool = build_marketplace_pool(
            10,
            DEFAULT_TASK_TYPES,
            seed=7,
            speed_spread=0.0,
            straggler_fraction=0.3,
            straggler_slowdown=10.0,
        )
        speeds = sorted(w.latency.speed for w in pool)
        assert speeds[:3] == pytest.approx([0.1, 0.1, 0.1])
        assert speeds[3:] == pytest.approx([1.0] * 7)

    def test_pool_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            build_marketplace_pool(5, DEFAULT_TASK_TYPES, straggler_fraction=1.5)
        with pytest.raises(ConfigurationError):
            build_marketplace_pool(5, DEFAULT_TASK_TYPES, speed_spread=1.0)
        with pytest.raises(ConfigurationError):
            SpammerWave(0.5, 0.5, 0.3).validate()
        with pytest.raises(ConfigurationError):
            SpammerWave(0.1, 0.5, 0.0).validate()


class TestMetrics:
    def test_percentile_interpolates(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0) == 10.0
        assert percentile(values, 100) == 40.0
        assert percentile(values, 50) == pytest.approx(25.0)
        assert percentile([7.0], 99) == 7.0
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_latency_summary_and_sla(self):
        summary = latency_summary([1.0, 2.0, 3.0, 4.0, 100.0])
        assert summary["count"] == 5
        assert summary["max"] == 100.0
        assert summary["p50"] == 3.0
        assert latency_summary([]) == {"count": 0}
        assert sla_attainment([1.0, 2.0, 3.0], 2.0) == pytest.approx(2 / 3)
        assert sla_attainment([], 5.0) == 1.0
        with pytest.raises(ValueError):
            sla_attainment([1.0], 0.0)


class TestScenarioSpec:
    def test_mapping_roundtrip_including_nested_types(self):
        spec = ScenarioSpec(
            name="roundtrip",
            arrival="diurnal",
            task_types=DEFAULT_TASK_TYPES,
            spammer_wave=SpammerWave(0.25, 0.75, 0.5),
            storage="ring",
            replicas=2,
            budget=12.5,
        )
        assert ScenarioSpec.from_mapping(spec.to_mapping()) == spec

    def test_validation_rejects_inconsistent_specs(self):
        ScenarioSpec().validate()  # defaults are valid
        with pytest.raises(ConfigurationError):
            ScenarioSpec(arrival="weibull").validate()
        with pytest.raises(ConfigurationError):
            ScenarioSpec(storage="redis").validate()
        with pytest.raises(ConfigurationError):
            ScenarioSpec(transport="carrier-pigeon").validate()
        with pytest.raises(ConfigurationError):
            ScenarioSpec(pool_size=2, redundancy=3).validate()
        with pytest.raises(ConfigurationError):
            ScenarioSpec(replicas=2, storage="sqlite").validate()
        with pytest.raises(ConfigurationError):
            ScenarioSpec(storage="ring", storage_shards=2, replicas=3).validate()
        with pytest.raises(ConfigurationError):
            ScenarioSpec(group_commit=True).validate()
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                task_types=(
                    TaskType(name="dup"),
                    TaskType(name="dup"),
                )
            ).validate()

    def test_wire_refuses_inprocess_only_features(self):
        with pytest.raises(ConfigurationError) as excinfo:
            ScenarioSpec(transport="wire").validate()
        assert "wire" in str(excinfo.value)
        ScenarioSpec(
            transport="wire",
            acceptance_mean=1.0,
            acceptance_spread=0.0,
            speed_spread=0.0,
            accuracy_spread=0.0,
        ).validate()

    def test_with_backend_helper(self):
        base = ScenarioSpec(storage="memory")
        ring = base.with_backend("ring", replicas=2)
        assert ring.storage == "ring" and ring.replicas == 2
        assert ring.seed == base.seed and ring.num_tasks == base.num_tasks
