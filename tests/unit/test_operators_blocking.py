"""Unit tests for similarity blocking and the machine-side join baselines."""

from __future__ import annotations

import pytest

from repro.datasets import make_entity_resolution_dataset
from repro.operators import MachineOnlyJoin, SimilarityBlocker, all_pairs, blocked_pairs
from repro.operators.blocking import default_similarity


@pytest.fixture
def er_records():
    return make_entity_resolution_dataset(num_entities=15, duplicates_per_entity=3, seed=11)


class TestAllPairs:
    def test_pair_count(self):
        assert len(all_pairs(range(10))) == 45

    def test_pairs_are_ordered_and_distinct(self):
        pairs = all_pairs([3, 1, 2])
        assert pairs == [(1, 2), (1, 3), (2, 3)]

    def test_single_item_no_pairs(self):
        assert all_pairs([1]) == []


class TestDefaultSimilarity:
    def test_identical_records(self):
        record = {"name": "apple laptop pro 15"}
        assert default_similarity(record, record) == 1.0

    def test_unrelated_records_low(self):
        left = {"name": "apple laptop pro 15"}
        right = {"name": "garmin smartwatch neo 900"}
        assert default_similarity(left, right) < 0.3

    def test_typo_tolerance_via_trigrams(self):
        left = {"name": "samsung smartphone ultra 2300"}
        right = {"name": "samsung smartphnoe ultra 2300"}
        assert default_similarity(left, right) > 0.6


class TestSimilarityBlocker:
    def test_threshold_zero_keeps_all_pairs(self, er_records):
        blocker = SimilarityBlocker(threshold=0.0, use_index=False)
        result = blocker.block(er_records.records)
        assert len(result.candidate_pairs) == result.total_pairs

    def test_higher_threshold_keeps_fewer_pairs(self, er_records):
        low = SimilarityBlocker(threshold=0.2).block(er_records.records)
        high = SimilarityBlocker(threshold=0.6).block(er_records.records)
        assert len(high.candidate_pairs) <= len(low.candidate_pairs)

    def test_candidates_sorted_by_similarity_descending(self, er_records):
        result = SimilarityBlocker(threshold=0.2).block(er_records.records)
        scores = [score for _, _, score in result.candidate_pairs]
        assert scores == sorted(scores, reverse=True)

    def test_indexed_and_quadratic_agree(self, er_records):
        indexed = SimilarityBlocker(threshold=0.3, use_index=True).block(er_records.records)
        quadratic = SimilarityBlocker(threshold=0.3, use_index=False).block(er_records.records)
        assert set(indexed.pairs()) == set(quadratic.pairs())

    def test_index_reduces_comparisons(self, er_records):
        indexed = SimilarityBlocker(threshold=0.3, use_index=True).block(er_records.records)
        quadratic = SimilarityBlocker(threshold=0.3, use_index=False).block(er_records.records)
        assert indexed.comparisons <= quadratic.comparisons

    def test_blocking_recall_is_high_at_moderate_threshold(self, er_records):
        result = SimilarityBlocker(threshold=0.3).block(er_records.records)
        surviving = set(result.pairs())
        recall = len(surviving & er_records.matching_pairs) / len(er_records.matching_pairs)
        assert recall >= 0.9

    def test_pruned_count(self, er_records):
        result = SimilarityBlocker(threshold=0.3).block(er_records.records)
        assert result.pruned() == result.total_pairs - len(result.candidate_pairs)

    def test_two_sided_blocking(self, er_records):
        ids = er_records.record_ids()
        left = {i: er_records.records[i] for i in ids[: len(ids) // 2]}
        right = {i: er_records.records[i] for i in ids[len(ids) // 2 :]}
        result = SimilarityBlocker(threshold=0.3).block_two_sided(left, right)
        assert result.total_pairs == len(left) * len(right)
        for left_id, right_id, _ in result.candidate_pairs:
            assert left_id in left and right_id in right

    def test_two_sided_index_matches_quadratic(self, er_records):
        ids = er_records.record_ids()
        left = {i: er_records.records[i] for i in ids[:20]}
        right = {i: er_records.records[i] for i in ids[20:]}
        indexed = SimilarityBlocker(threshold=0.3, use_index=True).block_two_sided(left, right)
        quadratic = SimilarityBlocker(threshold=0.3, use_index=False).block_two_sided(left, right)
        assert set(indexed.pairs()) == set(quadratic.pairs())

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SimilarityBlocker(threshold=1.5)

    def test_text_fields_restrict_similarity(self):
        left = {"name": "identical name", "note": "aaa bbb ccc"}
        right = {"name": "identical name", "note": "xxx yyy zzz"}
        full = SimilarityBlocker(threshold=0.9)
        name_only = SimilarityBlocker(threshold=0.9, text_fields=["name"],
                                      similarity=lambda a, b: default_similarity(
                                          {"name": a["name"]}, {"name": b["name"]}))
        assert name_only.block({1: left, 2: right}).candidate_pairs
        assert not full.block({1: left, 2: right}).candidate_pairs

    def test_blocked_pairs_helper(self, er_records):
        result = blocked_pairs(er_records.records, threshold=0.3)
        assert result.candidate_pairs


class TestMachineOnlyJoin:
    def test_zero_crowd_tasks(self, er_records):
        result = MachineOnlyJoin(threshold=0.5).join(er_records.records)
        assert result.report.crowd_tasks == 0

    def test_quality_below_crowd_hybrid(self, er_records):
        """Machine-only matching is measurably worse than hybrid verification."""
        machine = MachineOnlyJoin(threshold=0.5).join(er_records.records)
        _, _, machine_f1 = machine.precision_recall_f1(er_records.matching_pairs)
        assert machine_f1 < 0.95

    def test_all_decisions_are_yes(self, er_records):
        result = MachineOnlyJoin(threshold=0.6).join(er_records.records)
        assert all(decision == "Yes" for decision in result.decisions.values())
