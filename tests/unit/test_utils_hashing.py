"""Unit tests for repro.utils.hashing."""

from __future__ import annotations

from repro.utils.hashing import stable_hash, stable_json


class TestStableJson:
    def test_sorts_dict_keys(self):
        assert stable_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_handles_nested_structures(self):
        assert stable_json({"a": [1, {"b": 2}]}) == '{"a":[1,{"b":2}]}'

    def test_non_json_values_fall_back_to_repr(self):
        encoded = stable_json({"a": {1, 2}})
        assert "a" in encoded  # did not raise


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash({"x": 1}) == stable_hash({"x": 1})

    def test_key_order_irrelevant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_different_values_differ(self):
        assert stable_hash({"x": 1}) != stable_hash({"x": 2})

    def test_length_parameter(self):
        assert len(stable_hash("value", length=8)) == 8
        assert len(stable_hash("value", length=40)) == 40

    def test_strings_and_numbers_distinguished(self):
        assert stable_hash("1") != stable_hash(1)
