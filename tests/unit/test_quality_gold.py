"""Unit tests for gold-standard worker quality estimation."""

from __future__ import annotations

import pytest

from repro.quality import GoldStandard, WeightedVoteAggregator, inject_gold, majority_vote


@pytest.fixture
def votes():
    """Two gold items (0, 1) and two real items (2, 3).

    Worker ``spam`` answers gold questions wrong; workers ``good1``/``good2``
    answer them right.
    """
    return {
        0: [("good1", "Yes"), ("good2", "Yes"), ("spam", "No")],
        1: [("good1", "No"), ("good2", "No"), ("spam", "Yes")],
        2: [("good1", "Yes"), ("good2", "Yes"), ("spam", "No")],
        3: [("good1", "No"), ("spam", "Yes"), ("spam2", "Yes")],
    }


GOLD = {0: "Yes", 1: "No"}


class TestGoldEvaluation:
    def test_accuracy_estimated_from_gold_only(self, votes):
        report = GoldStandard(GOLD).evaluate(votes)
        assert report.worker_accuracy["good1"] == 1.0
        assert report.worker_accuracy["good2"] == 1.0
        assert report.worker_accuracy["spam"] == 0.0
        # spam2 never answered a gold question, so it has no estimate.
        assert "spam2" not in report.worker_accuracy

    def test_failed_workers_flagged(self, votes):
        report = GoldStandard(GOLD, pass_threshold=0.6).evaluate(votes)
        assert report.failed_workers == ["spam"]
        assert report.passed_workers() == ["good1", "good2"]

    def test_min_gold_answers_protects_underobserved_workers(self, votes):
        report = GoldStandard(GOLD, pass_threshold=0.6, min_gold_answers=3).evaluate(votes)
        # spam answered only 2 gold questions (< 3), so it is not flagged.
        assert report.failed_workers == []

    def test_gold_answer_counts(self, votes):
        report = GoldStandard(GOLD).evaluate(votes)
        assert report.gold_answers == {"good1": 2, "good2": 2, "spam": 2}

    def test_empty_gold_rejected(self):
        with pytest.raises(ValueError):
            GoldStandard({})

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            GoldStandard(GOLD, pass_threshold=1.5)


class TestGoldFiltering:
    def test_failed_workers_votes_removed(self, votes):
        gold = GoldStandard(GOLD)
        filtered = gold.filter_votes(votes)
        assert all(worker != "spam" for worker, _ in filtered[2])
        # Majority vote over filtered answers now ignores the spammer.
        assert majority_vote({2: filtered[2]})[2] == "Yes"

    def test_items_answered_only_by_failed_workers_keep_answers(self):
        votes = {
            0: [("spam", "No")],
            1: [("spam", "Yes")],
            5: [("spam", "Yes")],
        }
        gold = GoldStandard({0: "Yes", 1: "No"})
        filtered = gold.filter_votes(votes)
        assert filtered[5] == [("spam", "Yes")]

    def test_non_gold_items(self, votes):
        gold = GoldStandard(GOLD)
        non_gold = gold.non_gold_items(votes)
        assert set(non_gold) == {2, 3}

    def test_gold_accuracies_feed_weighted_vote(self, votes):
        gold = GoldStandard(GOLD)
        report = gold.evaluate(votes)
        aggregator = WeightedVoteAggregator(worker_accuracy=report.worker_accuracy)
        decisions = aggregator.aggregate(gold.non_gold_items(votes)).decisions
        # good1 outweighs spam+spam2 on item 3 because their gold accuracy is 0 / unknown.
        assert decisions[2] == "Yes"


class TestInjectGold:
    def test_interleaves_at_cadence(self):
        objects = [f"real{i}" for i in range(10)]
        gold_objects = {"gold_a": "Yes", "gold_b": "No"}
        combined, positions = inject_gold(objects, gold_objects, every=5)
        assert len(combined) == 12
        assert set(positions.values()) == {"Yes", "No"}
        for index, answer in positions.items():
            assert combined[index] in gold_objects
            assert gold_objects[combined[index]] == answer

    def test_leftover_gold_appended(self):
        combined, positions = inject_gold(["a", "b"], {"g1": "Yes", "g2": "No"}, every=5)
        assert len(combined) == 4
        assert len(positions) == 2

    def test_real_object_order_preserved(self):
        objects = [f"real{i}" for i in range(7)]
        combined, positions = inject_gold(objects, {"g": "Yes"}, every=3)
        reals = [obj for index, obj in enumerate(combined) if index not in positions]
        assert reals == objects

    def test_invalid_cadence(self):
        with pytest.raises(ValueError):
            inject_gold(["a"], {"g": "Yes"}, every=0)


class TestGoldEndToEnd:
    def test_gold_filtering_improves_mv_with_spammer_heavy_pool(self):
        """End-to-end: inject gold, estimate workers, filter, aggregate."""
        from repro import CrowdContext
        from repro.config import ReprowdConfig, StorageConfig, WorkerPoolConfig
        from repro.datasets import make_image_label_dataset
        from repro.presenters import ImageLabelPresenter
        from repro.quality import MajorityVoteAggregator

        dataset = make_image_label_dataset(num_images=40, seed=23)
        gold_dataset = make_image_label_dataset(num_images=8, seed=99)
        combined, gold_positions = inject_gold(
            dataset.images, {url: gold_dataset.labels[url] for url in gold_dataset.images}, every=5
        )

        def truth(obj):
            return dataset.ground_truth(obj) or gold_dataset.ground_truth(obj)

        config = ReprowdConfig(
            storage=StorageConfig(engine="memory"),
            workers=WorkerPoolConfig(
                size=20, mean_accuracy=0.85, spammer_fraction=0.5, seed=23
            ),
        )
        cc = CrowdContext(config=config, ground_truth=truth)
        data = (
            cc.CrowdData(combined, "gold_e2e")
            .set_presenter(ImageLabelPresenter())
            .publish_task(n_assignments=5)
            .get_result()
        )
        votes = {
            index: [(a["worker_id"], a["answer"]) for a in row["assignments"]]
            for index, row in enumerate(data.column("result"))
        }
        objects = data.column("object")
        real_truth = {
            index: dataset.labels[obj]
            for index, obj in enumerate(objects)
            if obj in dataset.labels
        }

        plain = MajorityVoteAggregator().aggregate(votes)
        gold = GoldStandard(gold_positions, pass_threshold=0.6)
        report = gold.evaluate(votes)
        filtered = gold.filter_votes(votes, report)
        cleaned = MajorityVoteAggregator().aggregate(filtered)

        # The pool is half spammers (ids w0000..w0009 by construction).  With
        # only ~2 gold answers per worker the estimate is noisy, so we check
        # that the flagged set is dominated by true spammers and that
        # filtering does not hurt accuracy materially (it usually helps).
        assert report.failed_workers
        true_spammers = {f"w{i:04d}" for i in range(10)}
        flagged_correctly = len(set(report.failed_workers) & true_spammers)
        assert flagged_correctly / len(report.failed_workers) >= 0.6
        plain_accuracy = plain.accuracy_against(real_truth)
        cleaned_accuracy = cleaned.accuracy_against(real_truth)
        assert cleaned_accuracy >= plain_accuracy - 0.05
        cc.close()
