"""Cross-shard group commit: deferred durability barriers stay correct.

``put_many``/``delete_many`` accept ``defer_commit=True`` and
``commit_group()`` flushes everything deferred since the last barrier —
one commit per touched member per wave instead of one per write.  Proofs:

* engine level — on every registry engine, a deferred wave followed by one
  ``commit_group`` leaves byte-identical state to the serial (per-batch
  commit) run, durably: the durable engines are reopened and compared too;
* visibility level — deferred writes are readable on the same handle
  *before* the barrier (the simulate loop reads its own appends), and a
  barrier with nothing deferred is a no-op;
* crash level — on the log engine (whose reopen-from-disk is exact even
  with the dead handle still in scope) an uncommitted wave vanishes
  atomically: the reopened engine holds everything up to the last barrier
  and *nothing* from the abandoned wave;
* store level — a :class:`DurableTaskStore` in group-commit mode produces
  the same published tasks, runs, counters and timestamps as the serial
  store, survives reopen identically, refuses group mode when ``shared``,
  and loses exactly the unbarriered append tail on a crash.
"""

from __future__ import annotations

import pytest

from repro.config import PlatformConfig
from repro.platform.models import TaskRun
from repro.platform.server import PlatformServer
from repro.platform.store import DurableTaskStore
from repro.storage import LogStructuredEngine, SqliteEngine
from repro.storage.testing import DURABLE_ENGINE_NAMES, ENGINE_NAMES, build_engine
from repro.workers.pool import WorkerPool

TABLE = "t"


def wave_ops(engine, defer):
    """One multi-batch write wave: inserts, overwrites, deletes."""
    engine.create_table(TABLE)
    engine.put_many(
        TABLE, [(f"a{i:02d}", {"i": i}) for i in range(8)], defer_commit=defer
    )
    engine.put_many(
        TABLE,
        [("a03", {"i": 3, "rev": 2}), ("b00", {"x": 0})],
        defer_commit=defer,
    )
    removed = engine.delete_many(TABLE, ["a01", "a05", "missing"], defer_commit=defer)
    assert removed == 2  # absent keys are not counted, deferred or not
    if defer:
        engine.commit_group()


def engine_state(engine):
    return [(r.key, r.value, r.version) for r in engine.scan(TABLE)]


class TestEngineGroupCommit:
    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_deferred_wave_equals_serial_writes(self, name, tmp_path):
        serial = build_engine(name, tmp_path / "serial")
        group = build_engine(name, tmp_path / "group")
        wave_ops(serial, defer=False)
        wave_ops(group, defer=True)
        expected = engine_state(serial)
        assert engine_state(group) == expected

        serial.close()
        group.close()
        if name in DURABLE_ENGINE_NAMES:
            assert engine_state(build_engine(name, tmp_path / "serial")) == expected
            assert engine_state(build_engine(name, tmp_path / "group")) == expected

    def test_deferred_writes_visible_before_the_barrier(self, sqlite_engine):
        sqlite_engine.create_table(TABLE)
        sqlite_engine.put_many(TABLE, [("k", {"v": 1})], defer_commit=True)
        assert sqlite_engine.get(TABLE, "k") == {"v": 1}
        assert sqlite_engine.count(TABLE) == 1
        sqlite_engine.delete_many(TABLE, ["k"], defer_commit=True)
        assert sqlite_engine.get(TABLE, "k") is None
        sqlite_engine.commit_group()

    def test_barrier_with_nothing_deferred_is_a_noop(self, any_engine):
        any_engine.commit_group()  # must not raise, even before any write
        any_engine.create_table(TABLE)
        any_engine.put(TABLE, "k", {"v": 1})
        any_engine.commit_group()
        assert any_engine.get(TABLE, "k") == {"v": 1}

    def test_log_engine_crash_loses_exactly_the_uncommitted_wave(self, tmp_path):
        path = str(tmp_path / "wal")
        engine = LogStructuredEngine(path, snapshot_every=1000)
        engine.create_table(TABLE)
        engine.put_many(TABLE, [(f"safe{i}", {"i": i}) for i in range(4)])
        engine.put_many(
            TABLE, [(f"lost{i}", {"i": i}) for i in range(4)], defer_commit=True
        )
        engine.delete_many(TABLE, ["safe0"], defer_commit=True)
        # Crash: abandon the handle without commit_group/flush/close.
        survivor = LogStructuredEngine(path, snapshot_every=1000)
        assert sorted(survivor.keys(TABLE)) == [f"safe{i}" for i in range(4)]
        survivor.close()

    def test_log_engine_barrier_makes_the_wave_durable(self, tmp_path):
        path = str(tmp_path / "wal")
        engine = LogStructuredEngine(path, snapshot_every=1000)
        engine.create_table(TABLE)
        engine.put_many(
            TABLE, [(f"k{i}", {"i": i}) for i in range(4)], defer_commit=True
        )
        engine.commit_group()
        # Crash *after* the barrier: the wave must survive in full.
        survivor = LogStructuredEngine(path, snapshot_every=1000)
        assert sorted(survivor.keys(TABLE)) == [f"k{i}" for i in range(4)]
        survivor.close()


def build_server(store, seed=3):
    pool = WorkerPool.uniform(size=10, accuracy=0.95, seed=seed)
    return PlatformServer(
        worker_pool=pool, config=PlatformConfig(seed=seed), store=store
    )


def run_experiment(store, num_tasks=12):
    server = build_server(store)
    project = server.create_project("exp")
    tasks = server.create_tasks(
        project.project_id,
        [
            {
                "info": {"i": i, "_true_answer": "Yes"},
                "n_assignments": 2,
                "dedup_key": f"k{i}",
            }
            for i in range(num_tasks)
        ],
    )
    server.simulate_work(project.project_id)
    store.flush()
    return server, project, tasks


def observable(store, project, tasks):
    return {
        "counts": store.counts(),
        "task_ids": [task.task_id for task in tasks],
        "runs": [
            [run.to_dict() for run in store.runs_for_task(task.task_id)]
            for task in tasks
        ],
        "latest": store.latest_timestamp(),
    }


class TestStoreGroupCommit:
    def test_group_mode_matches_the_serial_store(self, tmp_path):
        states = {}
        for label, group in (("serial", False), ("group", True)):
            engine = SqliteEngine(str(tmp_path / f"{label}.db"))
            store = DurableTaskStore(engine, group_commit=group)
            server, project, tasks = run_experiment(store)
            states[label] = observable(store, project, tasks)
            store.close()
            # Reopen from disk: the deferred waves must all have landed.
            reopened = DurableTaskStore(
                SqliteEngine(str(tmp_path / f"{label}.db")), group_commit=group
            )
            states[f"{label}-reopened"] = observable(reopened, project, tasks)
            # Id counters resume identically (no ids lost, none reused).
            states[f"{label}-next"] = (
                reopened.allocate_project_id(),
                reopened.allocate_task_ids(1),
                reopened.allocate_run_ids(1),
            )
            reopened.close()
        assert states["serial"] == states["group"]
        assert states["serial-reopened"] == states["group-reopened"]
        assert states["serial"] == states["serial-reopened"]
        assert states["serial-next"] == states["group-next"]

    def test_group_mode_with_batched_appends(self, tmp_path):
        engine = SqliteEngine(str(tmp_path / "batched.db"))
        store = DurableTaskStore(engine, group_commit=True, append_batch_size=16)
        server, project, tasks = run_experiment(store)
        assert store.counts()["task_runs"] == 2 * len(tasks)
        store.close()
        reopened = DurableTaskStore(SqliteEngine(str(tmp_path / "batched.db")))
        assert reopened.counts()["task_runs"] == 2 * len(tasks)
        reopened.close()

    def test_shared_mode_forces_group_commit_off(self, tmp_path):
        engine = SqliteEngine(str(tmp_path / "shared.db"))
        store = DurableTaskStore(engine, shared=True, group_commit=True)
        # Cross-process sharing relies on every write being visible (and
        # every lock released) immediately; deferral would break both.
        assert store._group_commit is False
        store.close()

    def test_crash_loses_only_the_unbarriered_append_tail(self, tmp_path):
        path = str(tmp_path / "wal")
        engine = LogStructuredEngine(path, snapshot_every=1000)
        store = DurableTaskStore(engine, group_commit=True)
        server = build_server(store)
        project = server.create_project("exp")
        tasks = server.create_tasks(
            project.project_id,
            [
                {"info": {"i": i}, "n_assignments": 1, "dedup_key": f"k{i}"}
                for i in range(4)
            ],
        )
        store.flush()  # barrier: the publish wave is durable
        # Append runs directly, *without* reaching a barrier.  (The server's
        # simulate_work ends in flush_appends — itself a barrier — so a real
        # crash can only lose appends issued since the last call.)
        first_run_id = store.allocate_run_ids(len(tasks), clock_time=1.0)
        for offset, task in enumerate(tasks):
            store.append_runs(
                task.task_id,
                [
                    TaskRun(
                        run_id=first_run_id + offset,
                        task_id=task.task_id,
                        project_id=project.project_id,
                        worker_id="w0",
                        answer="Yes",
                        submitted_at=1.0,
                        assignment_order=1,
                    )
                ],
            )
        assert store.counts()["task_runs"] == 4  # visible pre-barrier
        survivor = DurableTaskStore(LogStructuredEngine(path, snapshot_every=1000))
        counts = survivor.counts()
        assert counts["projects"] == 1
        assert counts["tasks"] == 4  # the barriered publish survived whole
        assert counts["task_runs"] == 0  # the unbarriered tail vanished whole
        # The healed rerun completes the work exactly once.
        healed_server = build_server(survivor)
        healed_server.simulate_work(project.project_id)
        survivor.flush()
        assert survivor.counts()["task_runs"] == 4
        survivor.close()
