"""Unit tests for the worker pool, latency models and skill profiles."""

from __future__ import annotations

import random

import pytest

from repro.config import WorkerPoolConfig
from repro.exceptions import NoEligibleWorkerError
from repro.workers import (
    AdversarialWorker,
    ConstantLatency,
    LogNormalLatency,
    NoisyWorker,
    SimulatedWorker,
    SkillProfile,
    SpammerWorker,
    UniformLatency,
    WorkerPool,
)


class TestLatencyModels:
    def test_constant(self):
        assert ConstantLatency(12.0).sample(random.Random(0)) == 12.0

    def test_constant_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ConstantLatency(0.0)

    def test_uniform_bounds(self):
        model = UniformLatency(low=5.0, high=10.0)
        rng = random.Random(1)
        samples = [model.sample(rng) for _ in range(200)]
        assert all(5.0 <= sample <= 10.0 for sample in samples)

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(low=10.0, high=5.0)

    def test_lognormal_positive_and_spread(self):
        model = LogNormalLatency(median=30.0, sigma=0.5)
        rng = random.Random(2)
        samples = [model.sample(rng) for _ in range(500)]
        assert all(sample > 0 for sample in samples)
        assert min(samples) < 30.0 < max(samples)


class TestSkillProfile:
    def test_uniform_profile_is_identity(self):
        assert SkillProfile.uniform().effective_accuracy(0.8, "image_label") == 0.8

    def test_multiplier_applied(self):
        profile = SkillProfile.from_mapping({"image_label": 0.5})
        assert profile.effective_accuracy(0.8, "image_label") == pytest.approx(0.4)

    def test_clamped_to_one(self):
        profile = SkillProfile.from_mapping({"easy": 1.5})
        assert profile.effective_accuracy(0.9, "easy") == 1.0

    def test_unknown_task_type_untouched(self):
        profile = SkillProfile.from_mapping({"image_label": 0.5})
        assert profile.effective_accuracy(0.8, "text_label") == 0.8

    def test_invalid_multiplier_rejected(self):
        with pytest.raises(ValueError):
            SkillProfile.from_mapping({"x": 2.0})


class TestWorkerPoolConstruction:
    def test_from_config_size(self):
        pool = WorkerPool.from_config(WorkerPoolConfig(size=10, seed=1))
        assert len(pool) == 10
        assert len(set(pool.worker_ids())) == 10

    def test_from_config_spammer_fraction(self):
        pool = WorkerPool.from_config(
            WorkerPoolConfig(size=20, spammer_fraction=0.25, seed=1)
        )
        stats = pool.statistics()
        assert stats["behaviors"].get("SpammerWorker", 0) == 5

    def test_from_config_adversarial_fraction(self):
        pool = WorkerPool.from_config(
            WorkerPoolConfig(size=10, adversarial_fraction=0.2, seed=1)
        )
        assert pool.statistics()["behaviors"].get("AdversarialWorker", 0) == 2

    def test_uniform_pool(self):
        pool = WorkerPool.uniform(size=5, accuracy=0.9)
        assert len(pool) == 5
        assert all(isinstance(worker.behavior, NoisyWorker) for worker in pool)

    def test_empty_pool_rejected(self):
        with pytest.raises(NoEligibleWorkerError):
            WorkerPool([])

    def test_deterministic_generation(self):
        pool_a = WorkerPool.from_config(WorkerPoolConfig(size=8, seed=3))
        pool_b = WorkerPool.from_config(WorkerPoolConfig(size=8, seed=3))
        accs_a = [worker.behavior.accuracy for worker in pool_a if isinstance(worker.behavior, NoisyWorker)]
        accs_b = [worker.behavior.accuracy for worker in pool_b if isinstance(worker.behavior, NoisyWorker)]
        assert accs_a == accs_b


class TestWorkerPoolSampling:
    def test_draw_excludes(self):
        pool = WorkerPool.uniform(size=3, accuracy=0.9, seed=4)
        excluded = pool.worker_ids()[:2]
        for _ in range(20):
            worker = pool.draw(exclude=excluded)
            assert worker.worker_id not in excluded

    def test_draw_all_excluded_raises(self):
        pool = WorkerPool.uniform(size=2, accuracy=0.9)
        with pytest.raises(NoEligibleWorkerError):
            pool.draw(exclude=pool.worker_ids())

    def test_draw_distinct(self):
        pool = WorkerPool.uniform(size=10, accuracy=0.9)
        workers = pool.draw_distinct(5)
        assert len({worker.worker_id for worker in workers}) == 5

    def test_draw_distinct_too_many_raises(self):
        pool = WorkerPool.uniform(size=3, accuracy=0.9)
        with pytest.raises(NoEligibleWorkerError):
            pool.draw_distinct(4)

    def test_worker_lookup(self):
        pool = WorkerPool.uniform(size=3, accuracy=0.9)
        worker_id = pool.worker_ids()[1]
        assert pool.worker(worker_id).worker_id == worker_id
        with pytest.raises(NoEligibleWorkerError):
            pool.worker("nope")


class TestSimulatedWorkerAnswer:
    def test_answer_returns_latency(self):
        worker = SimulatedWorker("w1", NoisyWorker(0.9), latency=ConstantLatency(20.0))
        answer, latency = worker.answer(["Yes", "No"], "Yes", random.Random(0))
        assert answer in ("Yes", "No")
        assert latency == 20.0
        assert worker.answered_tasks == 1

    def test_skill_profile_degrades_accuracy(self):
        profile = SkillProfile.from_mapping({"hard_task": 0.5})
        worker = SimulatedWorker("w1", NoisyWorker(1.0), skills=profile)
        rng = random.Random(5)
        answers = [
            worker.answer(["Yes", "No"], "Yes", rng, task_type="hard_task")[0]
            for _ in range(2000)
        ]
        accuracy = sum(answer == "Yes" for answer in answers) / len(answers)
        assert accuracy == pytest.approx(0.5, abs=0.05)

    def test_statistics_counts_answers(self):
        pool = WorkerPool.uniform(size=2, accuracy=1.0)
        worker = pool.workers[0]
        worker.answer(["Yes", "No"], "Yes", pool.rng)
        assert pool.statistics()["answers_given"] == 1
