"""Unit tests for CrowdContext and ExperimentSession."""

from __future__ import annotations

import os

import pytest

from repro import CrowdContext, ExperimentSession
from repro.config import PlatformConfig, ReprowdConfig, StorageConfig, WorkerPoolConfig
from repro.exceptions import CrowdDataError
from repro.platform.transport import FaultInjectingTransport
from repro.presenters import ImageLabelPresenter


class TestContextConstruction:
    def test_default_is_in_memory(self):
        context = CrowdContext()
        assert context.db_path == ":memory:"
        context.close()

    def test_with_sqlite_creates_file(self, tmp_path):
        path = str(tmp_path / "exp.db")
        context = CrowdContext.with_sqlite(path)
        context.CrowdData(["a"], "t")
        context.flush()
        assert os.path.exists(path)
        context.close()

    def test_fault_injection_configured_from_platform_config(self):
        config = ReprowdConfig(
            storage=StorageConfig(engine="memory"),
            platform=PlatformConfig(failure_rate=0.5, seed=1),
        )
        context = CrowdContext(config=config)
        assert isinstance(context.client.transport, FaultInjectingTransport)
        context.close()

    def test_explicit_transport_wins(self):
        transport = FaultInjectingTransport(failure_rate=0.0, seed=1)
        context = CrowdContext.in_memory(transport=transport)
        assert context.client.transport is transport
        context.close()

    def test_context_manager_closes_engine(self, tmp_path):
        path = str(tmp_path / "cm.db")
        with CrowdContext.with_sqlite(path) as context:
            context.CrowdData(["a"], "t")
        # Closed cleanly; reopening works.
        with CrowdContext.with_sqlite(path) as context:
            assert "t" in context.show_tables()

    def test_worker_pool_size_from_config(self):
        config = ReprowdConfig(
            storage=StorageConfig(engine="memory"),
            workers=WorkerPoolConfig(size=7, seed=1),
        )
        context = CrowdContext(config=config)
        assert len(context.worker_pool) == 7
        context.close()


class TestTableManagement:
    def test_show_tables_lists_created_tables(self, context):
        context.CrowdData(["a"], "t1")
        context.CrowdData(["b"], "t2")
        assert context.show_tables() == ["t1", "t2"]

    def test_get_table(self, context):
        data = context.CrowdData(["a"], "t1")
        assert context.get_table("t1") is data
        with pytest.raises(CrowdDataError):
            context.get_table("missing")

    def test_delete_table_removes_cache(self, sqlite_context, image_dataset):
        data = sqlite_context.CrowdData(
            image_dataset.images, "t", ground_truth=image_dataset.ground_truth
        )
        data.set_presenter(ImageLabelPresenter()).publish_task(2).get_result()
        sqlite_context.delete_table("t")
        assert "t" not in sqlite_context.show_tables()
        fresh = sqlite_context.CrowdData(image_dataset.images, "t")
        assert fresh.cache.task_count() == 0

    def test_show_tables_sees_previous_runs(self, tmp_path):
        path = str(tmp_path / "multi.db")
        with CrowdContext.with_sqlite(path) as context:
            context.CrowdData(["a"], "old_experiment")
        with CrowdContext.with_sqlite(path) as context:
            assert context.show_tables() == ["old_experiment"]

    def test_describe(self, context):
        context.CrowdData(["a"], "t1")
        description = context.describe()
        assert description["tables"] == ["t1"]
        assert "storage" in description and "platform" in description


class TestGroundTruth:
    def test_context_level_oracle_used(self, accurate_context, image_dataset):
        accurate_context.set_ground_truth(image_dataset.ground_truth)
        data = accurate_context.CrowdData(image_dataset.images, "t")
        data.set_presenter(ImageLabelPresenter()).publish_task(3).get_result().mv()
        truth = [image_dataset.labels[url] for url in image_dataset.images]
        agreement = sum(a == b for a, b in zip(data.column("mv"), truth)) / len(truth)
        assert agreement >= 0.9

    def test_table_level_oracle_overrides(self, accurate_context, image_dataset):
        accurate_context.set_ground_truth(lambda obj: "No")
        data = accurate_context.CrowdData(
            image_dataset.images, "t", ground_truth=lambda obj: "Yes"
        )
        data.set_presenter(ImageLabelPresenter()).publish_task(3).get_result().mv()
        assert set(data.column("mv")) == {"Yes"}


class TestExportAndSession:
    def test_export_database_copies_file(self, tmp_path, image_dataset):
        src = str(tmp_path / "bob.db")
        dst = str(tmp_path / "ally.db")
        context = CrowdContext.with_sqlite(src)
        context.CrowdData(["a"], "t")
        context.export_database(dst)
        assert os.path.exists(dst)
        context.close()

    def test_export_in_memory_rejected(self, context):
        with pytest.raises(CrowdDataError):
            context.export_database("/tmp/nowhere.db")

    def test_session_run_and_share(self, tmp_path, image_dataset):
        bob_session = ExperimentSession("bob", str(tmp_path / "bob.db"), seed=3)

        def experiment(cc: CrowdContext):
            cc.set_ground_truth(image_dataset.ground_truth)
            data = cc.CrowdData(image_dataset.images, "imgs")
            data.set_presenter(ImageLabelPresenter()).publish_task(3).get_result().mv()
            return data.column("mv")

        bob_labels = bob_session.run(experiment)
        ally_session = bob_session.share(str(tmp_path / "ally.db"))
        ally_labels = ally_session.run(experiment)
        assert bob_labels == ally_labels
        assert bob_session.runs == 1
        assert ally_session.database_size_bytes() > 0

    def test_share_before_run_rejected(self, tmp_path):
        session = ExperimentSession("empty", str(tmp_path / "missing.db"))
        with pytest.raises(CrowdDataError):
            session.share(str(tmp_path / "copy.db"))
