"""Durable platform state: the TaskStore contract and restart recovery.

Four layers of proof:

* store level — :class:`DurableTaskStore` honours the contract on every
  storage engine (counters, page cursors, dedup resolution), and a store
  reopened on the same engine resumes where the dead one stopped;
* server level — the same seeded experiment produces identical task runs on
  the memory store and on a durable store (the stores are one equivalence
  class), and a server reconstructed on the same engine resumes with
  identical ids, dedup behaviour and page cursors — including a restart in
  the middle of ``iter_task_runs_for_project``;
* CrowdData level — publish through the full stack, kill the whole context
  (server included), reopen the same database file, and collection
  completes exactly-once with stable task ids;
* config level — ``PlatformConfig(store=...)`` / ``store_engine`` build the
  right store through ``open_task_store`` and ``ReprowdConfig.durable``.
"""

from __future__ import annotations

import pytest

from repro.config import PlatformConfig, ReprowdConfig, StorageConfig
from repro.core.session import ExperimentSession
from repro.exceptions import ConfigurationError, PlatformError
from repro.platform.client import PlatformClient
from repro.platform.server import PlatformServer
from repro.platform.store import (
    DurableTaskStore,
    MemoryTaskStore,
    open_task_store,
)
from repro.presenters import ImageLabelPresenter
from repro.storage import SqliteEngine
from repro.workers.pool import WorkerPool

NUM_TASKS = 17
PAGE_SIZE = 5


def build_server(store=None, seed=1, pool_size=10):
    pool = WorkerPool.uniform(size=pool_size, accuracy=0.95, seed=seed)
    return PlatformServer(
        worker_pool=pool, config=PlatformConfig(seed=seed), store=store
    )


def publish_project(server, num_tasks=NUM_TASKS, redundancy=2):
    project = server.create_project("exp")
    tasks = server.create_tasks(
        project.project_id,
        [
            {
                "info": {"i": i, "_true_answer": "Yes"},
                "n_assignments": redundancy,
                "dedup_key": f"k{i}",
            }
            for i in range(num_tasks)
        ],
    )
    return project, tasks


class TestDurableStoreContract:
    """DurableTaskStore semantics on every engine (via the shared fixture)."""

    def test_counters_are_durable_across_reopen(self, any_engine):
        store = DurableTaskStore(any_engine)
        assert store.allocate_project_id() == 1
        assert store.allocate_task_ids(5) == 1
        assert store.allocate_run_ids(3) == 1
        reopened = DurableTaskStore(any_engine)
        assert reopened.allocate_project_id() == 2
        assert reopened.allocate_task_ids(1) == 6
        assert reopened.allocate_run_ids(1) == 4

    def test_page_cursor_contract(self, any_engine):
        server = build_server(DurableTaskStore(any_engine))
        project, tasks = publish_project(server)
        ids = [task.task_id for task in tasks]
        first = server.list_project_task_ids(project.project_id, PAGE_SIZE)
        assert first == ids[:PAGE_SIZE]
        rest = server.list_project_task_ids(
            project.project_id, NUM_TASKS, start_after=first[-1]
        )
        assert first + rest == ids
        with pytest.raises(PlatformError):
            server.list_project_task_ids(project.project_id, PAGE_SIZE, start_after=999)

    def test_dedup_and_deletion(self, any_engine):
        server = build_server(DurableTaskStore(any_engine))
        project, tasks = publish_project(server, num_tasks=3)
        (replayed,) = server.create_tasks(
            project.project_id, [{"info": {"i": 0}, "dedup_key": "k0"}]
        )
        assert replayed.task_id == tasks[0].task_id
        server.delete_task(tasks[0].task_id)
        (fresh,) = server.create_tasks(
            project.project_id, [{"info": {"i": 0}, "dedup_key": "k0"}]
        )
        assert fresh.task_id != tasks[0].task_id  # deleted task not resurrected

    def test_delete_project_cascades(self, any_engine):
        store = DurableTaskStore(any_engine)
        server = build_server(store)
        project, _ = publish_project(server, num_tasks=4)
        server.simulate_work(project.project_id)
        assert store.counts()["task_runs"] > 0
        server.delete_project(project.project_id)
        assert store.counts() == {"projects": 0, "tasks": 0, "task_runs": 0}


class TestTornPublishHealing:
    """A crash inside a durable add_tasks batch converges on replay.

    The durable store writes dedup mappings, then task records, then index
    entries — one engine batch each.  Every window a crash can fall into is
    simulated by hand-writing the corresponding prefix, and the replay of
    the same ``create_tasks`` batch must converge without double-publishing
    or leaving invisible tasks.
    """

    def test_dangling_dedup_mapping_is_overwritten(self, sqlite_engine):
        store = DurableTaskStore(sqlite_engine)
        server = build_server(store)
        project = server.create_project("exp")
        # Crash window 1: the dedup batch landed, nothing else did.
        sqlite_engine.put_many(
            store._dedup_table(project.project_id), [("k0", 424242)]
        )
        (task,) = server.create_tasks(
            project.project_id, [{"info": {"i": 0}, "dedup_key": "k0"}]
        )
        assert task.task_id != 424242  # mapping to a never-written task ignored
        assert [t.task_id for t in server.list_tasks(project.project_id)] == [task.task_id]
        assert server.statistics()["tasks"] == 1
        # The replayed mapping now points at the real task.
        assert store.resolve_dedup_keys(project.project_id, ["k0"]) == {
            "k0": task.task_id
        }

    def test_missing_index_entries_are_healed_on_replay(self, sqlite_engine):
        from repro.platform.models import Task

        store = DurableTaskStore(sqlite_engine)
        server = build_server(store)
        project = server.create_project("exp")
        # Crash window 2: dedup + task records landed, index entries did not.
        task_id = store.allocate_task_ids(1)
        orphan = Task(task_id=task_id, project_id=project.project_id, info={"i": 0})
        sqlite_engine.put_many(store._dedup_table(project.project_id), [("k0", task_id)])
        sqlite_engine.put_many(
            store._tasks_table, [(store._id_key(task_id), orphan.to_dict())]
        )
        assert server.list_tasks(project.project_id) == []  # invisible pre-replay

        (replayed,) = server.create_tasks(
            project.project_id, [{"info": {"i": 0}, "dedup_key": "k0"}]
        )
        assert replayed.task_id == task_id  # no double publish
        assert [t.task_id for t in server.list_tasks(project.project_id)] == [task_id]
        assert server.statistics()["tasks"] == 1
        # Collection sees the healed task through the paged id stream too.
        assert server.list_project_task_ids(project.project_id, 10) == [task_id]

    def test_unindexed_orphan_record_is_invisible(self, sqlite_engine):
        """Crash window for a spec *without* a dedup key: the task record
        landed but its index entry did not.  No replay can recognise it, so
        it must stay invisible — to pages, lists and statistics alike."""
        from repro.platform.models import Task

        store = DurableTaskStore(sqlite_engine)
        server = build_server(store)
        project, tasks = publish_project(server, num_tasks=3)
        orphan_id = store.allocate_task_ids(1)
        orphan = Task(task_id=orphan_id, project_id=project.project_id, info={})
        sqlite_engine.put_many(
            store._tasks_table, [(store._id_key(orphan_id), orphan.to_dict())]
        )
        assert server.statistics()["tasks"] == 3
        assert [t.task_id for t in server.list_tasks(project.project_id)] == [
            t.task_id for t in tasks
        ]
        assert server.list_project_task_ids(project.project_id, 10) == [
            t.task_id for t in tasks
        ]

    def test_unknown_cursor_is_translated_but_infra_errors_are_not(self, sqlite_engine):
        from repro.exceptions import TableNotFoundError

        store = DurableTaskStore(sqlite_engine)
        server = build_server(store)
        project, _ = publish_project(server, num_tasks=3)
        with pytest.raises(PlatformError):
            store.task_id_page(project.project_id, 2, start_after=999)
        # A missing index table is an infrastructure failure, not a stale
        # cursor: it must propagate untranslated.
        with pytest.raises(TableNotFoundError):
            store.task_id_page(31337, 2, start_after=1)


class TestStoreEquivalence:
    """Memory and durable stores are one behavioural equivalence class."""

    def run_experiment(self, store):
        server = build_server(store, seed=5)
        project, tasks = publish_project(server)
        server.simulate_work(project.project_id)
        runs = [
            (run.run_id, run.task_id, run.worker_id, run.answer, run.assignment_order)
            for run in server.project_task_runs(project.project_id)
        ]
        stats = server.statistics()
        return (
            [task.task_id for task in tasks],
            runs,
            {key: stats[key] for key in ("projects", "tasks", "task_runs")},
        )

    def test_identical_experiment_on_both_stores(self, sqlite_engine):
        memory = self.run_experiment(MemoryTaskStore())
        durable = self.run_experiment(DurableTaskStore(sqlite_engine))
        assert memory == durable


class TestServerRestart:
    """A server reconstructed on the same engine resumes seamlessly."""

    def test_replay_after_restart_is_idempotent(self, sqlite_engine):
        server = build_server(DurableTaskStore(sqlite_engine))
        project, tasks = publish_project(server)
        ids = [task.task_id for task in tasks]
        del server

        reopened = build_server(DurableTaskStore(sqlite_engine))
        _, replayed = publish_project(reopened)  # same dedup keys
        assert [task.task_id for task in replayed] == ids
        assert reopened.statistics()["tasks"] == NUM_TASKS
        # Fresh ids continue after the highest pre-restart id.
        extra = reopened.create_task(project.project_id, {"i": "x"}, 1)
        assert extra.task_id == max(ids) + 1

    def test_restart_mid_simulation_completes_exactly_once(self, sqlite_engine):
        server = build_server(DurableTaskStore(sqlite_engine))
        project, _ = publish_project(server, redundancy=2)
        done = server.simulate_work(project.project_id, max_assignments=9)
        assert done == 9
        del server  # the platform dies mid-collection

        reopened = build_server(DurableTaskStore(sqlite_engine))
        topped_up = reopened.simulate_work(project.project_id)
        assert topped_up == NUM_TASKS * 2 - 9
        assert reopened.is_project_complete(project.project_id)
        assert reopened.statistics()["task_runs"] == NUM_TASKS * 2
        # Every run id is distinct across the restart boundary.
        runs = reopened.project_task_runs(project.project_id)
        assert len({run.run_id for run in runs}) == len(runs)

    def test_timestamps_never_regress_across_restart(self, sqlite_engine):
        """A reopened server fast-forwards its fresh clock past every
        surviving answer, so post-restart work is never stamped earlier."""
        server = build_server(DurableTaskStore(sqlite_engine))
        project, _ = publish_project(server, redundancy=2)
        server.simulate_work(project.project_id, max_assignments=9)
        runs_before = server.project_task_runs(project.project_id)
        latest = max(run.submitted_at for run in runs_before)
        seen_ids = {run.run_id for run in runs_before}
        del server

        reopened = build_server(DurableTaskStore(sqlite_engine))
        assert reopened.clock.now >= latest
        reopened.simulate_work(project.project_id)
        for run in reopened.project_task_runs(project.project_id):
            if run.run_id not in seen_ids:
                assert run.submitted_at > latest
        for task in reopened.list_tasks(project.project_id):
            assert task.completed_at is not None
            assert task.completed_at >= task.created_at

    def test_rerun_heals_missing_completion_stamp(self, sqlite_engine):
        """Crash window between append_runs and update_task: the answers
        landed but completed_at did not — the rerun must stamp it."""
        store = DurableTaskStore(sqlite_engine)
        server = build_server(store)
        project, tasks = publish_project(server, num_tasks=3)
        server.simulate_work(project.project_id)
        victim = server.get_task(tasks[0].task_id)
        assert victim.completed_at is not None
        victim.completed_at = None
        store.update_task(victim)
        del server

        reopened = build_server(DurableTaskStore(sqlite_engine))
        assert reopened.simulate_work(project.project_id) == 0  # nothing re-collected
        assert reopened.get_task(victim.task_id).completed_at is not None

    def test_restart_mid_stream_resumes_from_cursor(self, sqlite_engine):
        server = build_server(DurableTaskStore(sqlite_engine))
        project, _ = publish_project(server)
        server.simulate_work(project.project_id)
        expected = {
            task_id: [run.run_id for run in runs]
            for task_id, runs in server.get_task_runs_for_project(
                project.project_id
            ).items()
        }

        collected: dict[int, list[int]] = {}
        cursor = None
        for page_number in range(2):  # two pages, then the server dies
            page = server.get_task_runs_page(
                project.project_id, PAGE_SIZE, start_after=cursor
            )
            collected.update(
                (task_id, [run.run_id for run in runs]) for task_id, runs in page
            )
            cursor = page[-1][0]
        del server

        client = PlatformClient(build_server(DurableTaskStore(sqlite_engine)))
        while True:
            page = client.get_task_runs_page(
                project.project_id, PAGE_SIZE, start_after=cursor
            )
            collected.update(
                (task_id, [run.run_id for run in runs]) for task_id, runs in page
            )
            if len(page) < PAGE_SIZE:
                break
            cursor = page[-1][0]
        assert collected == expected


class TestCrowdDataRestartRecovery:
    """Kill the whole context (server included) mid-experiment; rerun heals.

    Parametrised over the storage backends a durable platform can live on:
    one sqlite file, a sharded directory, or a consistent-hash ring
    directory — including a ring that rebalances between the publish run
    and the collect run, with the platform state riding in the migrated
    engine.
    """

    OBJECTS = [f"img-{i:03d}.png" for i in range(NUM_TASKS)]

    @pytest.fixture(params=["sqlite", "sharded", "ring"])
    def storage_backend(self, request):
        return request.param

    def make_session(self, tmp_path, storage_backend="sqlite") -> ExperimentSession:
        artifact = "exp.db" if storage_backend == "sqlite" else "exp-store"
        return ExperimentSession(
            name="durable-platform",
            db_path=str(tmp_path / artifact),
            durable_platform=True,
            storage_engine=storage_backend,
            context_kwargs={"ground_truth": lambda obj: "Yes"},
        )

    def build_table(self, context):
        data = context.CrowdData(list(self.OBJECTS), "restart_tbl")
        data.collect_page_size = PAGE_SIZE
        data.set_presenter(ImageLabelPresenter())
        return data

    def test_collection_completes_exactly_once_after_server_death(
        self, tmp_path, storage_backend
    ):
        session = self.make_session(tmp_path, storage_backend)

        def publish_only(context):
            data = self.build_table(context)
            data.publish_task(n_assignments=2)
            return (
                context.client.statistics()["tasks"],
                [descriptor["task_id"] for descriptor in data.column("task")],
            )

        # Run 1 dies after publish: closing the context kills the server.
        tasks_published, ids_before = session.run(publish_only)
        assert tasks_published == NUM_TASKS

        if storage_backend == "ring":
            # Grow the ring between the runs: the *platform's* durable state
            # (tasks, runs, counters) migrates along with the cache, and the
            # reopened server must still resume exactly-once.
            from repro.storage import SqliteEngine, open_engine
            from repro.config import StorageConfig

            ring = open_engine(
                StorageConfig(engine="ring", path=session.db_path)
            )
            report = ring.rebalance(
                add={
                    "ring-99": SqliteEngine(
                        str(tmp_path / "exp-store" / "ring-99.db")
                    )
                }
            )
            assert report["keys_moved"] > 0
            ring.close()

        def finish(context):
            data = self.build_table(context)
            data.publish_task(n_assignments=2)
            data.get_result()
            return (
                context.client.statistics(),
                [descriptor["task_id"] for descriptor in data.column("task")],
                data.column("result"),
            )

        # Run 2 reopens the same file: a brand-new PlatformServer on the
        # same engine must serve the cached task ids, publish nothing new,
        # and complete the collection.
        stats, ids_after, results = session.run(finish)
        assert ids_after == ids_before  # stable task ids across the restart
        assert stats["tasks"] == NUM_TASKS  # zero duplicate publishes
        assert stats["task_runs"] == NUM_TASKS * 2
        assert all(result["complete"] for result in results)

        # Run 3 is a pure replay: no new tasks, no new answers.
        stats, ids_again, results = session.run(finish)
        assert ids_again == ids_before
        assert stats["tasks"] == NUM_TASKS
        assert stats["task_runs"] == NUM_TASKS * 2
        assert all(result["complete"] for result in results)

    def test_shared_artifact_carries_the_platform(self, tmp_path, storage_backend):
        session = self.make_session(tmp_path, storage_backend)

        def run_all(context):
            data = self.build_table(context)
            data.publish_task(n_assignments=2)
            data.get_result()
            return context.client.statistics()["task_runs"]

        assert session.run(run_all) == NUM_TASKS * 2
        ally = session.share(str(tmp_path / "ally" / "exp.db"))
        assert ally.durable_platform
        # Ally's rerun replays Bob's platform — nothing is re-collected.
        assert ally.run(run_all) == NUM_TASKS * 2


class TestOpenTaskStore:
    def test_default_is_memory(self):
        assert isinstance(open_task_store(PlatformConfig()), MemoryTaskStore)

    def test_durable_with_shared_engine(self, memory_engine):
        store = open_task_store(
            PlatformConfig(store="durable"), shared_engine=memory_engine
        )
        assert isinstance(store, DurableTaskStore)
        store.close()
        # The store does not own a shared engine: still usable afterwards.
        memory_engine.create_table("still-open")

    def test_durable_with_own_engine(self, tmp_path):
        config = PlatformConfig(
            store="durable",
            store_engine=StorageConfig(engine="sqlite", path=str(tmp_path / "own.db")),
        )
        store = open_task_store(config)
        assert isinstance(store, DurableTaskStore)
        assert store.allocate_task_ids(1) == 1
        store.close()

    def test_durable_without_engine_raises(self):
        with pytest.raises(ConfigurationError):
            open_task_store(PlatformConfig(store="durable"))

    def test_unknown_store_raises(self):
        with pytest.raises(ConfigurationError):
            open_task_store(PlatformConfig(store="quantum"))

    def test_reprowd_config_durable_factory(self, tmp_path):
        config = ReprowdConfig.durable(str(tmp_path / "exp.db"), seed=3)
        assert config.storage.engine == "sqlite"
        assert config.platform.store == "durable"
        assert config.platform.seed == 3

    def test_from_mapping_builds_store_engine(self, tmp_path):
        config = ReprowdConfig.from_mapping(
            {
                "platform": {
                    "store": "durable",
                    "store_engine": {
                        "engine": "sqlite",
                        "path": str(tmp_path / "platform.db"),
                    },
                }
            }
        )
        assert config.platform.store == "durable"
        assert isinstance(config.platform.store_engine, StorageConfig)
        assert config.platform.store_engine.engine == "sqlite"
