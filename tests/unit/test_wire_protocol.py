"""Unit tests for the wire protocol: framing, value/error codecs, retry
backoff, and the in-process WireServer/WireClient pair.

The cross-process side (spawned ``python -m repro.platform.wire`` servers,
multi-process contention) lives in ``tests/integration/test_wire_cluster.py``;
here every socket stays inside the test process so failures are cheap to
reproduce and the byte-level edge cases (frames split across reads, EOF
inside a header, oversized frames in both directions) are deterministic.
"""

from __future__ import annotations

import random
import socket
import threading

import pytest

from repro.config import PlatformConfig, WorkerPoolConfig
from repro.exceptions import (
    DuplicateKeyError,
    PlatformError,
    PlatformUnavailableError,
    ProjectNotFoundError,
    StorageError,
    TaskNotFoundError,
)
from repro.platform.models import Project, Task, TaskRun
from repro.platform.server import PlatformServer
from repro.platform.store import DurableTaskStore
from repro.platform.transport import retry_call
from repro.platform.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameTooLargeError,
    WIRE_OPS,
    WireClient,
    WireServer,
    decode_error,
    decode_value,
    encode_error,
    encode_value,
    read_frame,
    write_frame,
)
from repro.storage import SqliteEngine
from repro.workers.pool import WorkerPool


# -- value codec -------------------------------------------------------------


class TestValueCodec:
    def roundtrip(self, value):
        return decode_value(encode_value(value))

    def test_scalars_pass_through(self):
        for value in (None, True, 0, 7, 2.5, "hello", ""):
            assert self.roundtrip(value) == value

    def test_lists_and_string_dicts(self):
        value = {"a": [1, 2, {"b": None}], "c": "x"}
        assert self.roundtrip(value) == value

    def test_tuple_survives_as_tuple(self):
        assert self.roundtrip((1, "two", [3])) == (1, "two", [3])
        assert isinstance(self.roundtrip((1,)), tuple)

    def test_model_objects_roundtrip(self):
        project = Project(project_id=3, name="p", short_name="p")
        task = Task(task_id=9, project_id=3, info={"url": "img"}, n_assignments=2)
        run = TaskRun(run_id=4, task_id=9, project_id=3, worker_id="w1", answer="Yes")
        assert self.roundtrip(project) == project
        assert self.roundtrip(task) == task
        assert self.roundtrip(run) == run
        assert self.roundtrip([task, run]) == [task, run]

    def test_int_keyed_dict_keeps_int_keys(self):
        runs = {
            7: [TaskRun(run_id=1, task_id=7, project_id=1, worker_id="w", answer="A")],
            8: [],
        }
        decoded = self.roundtrip(runs)
        assert set(decoded) == {7, 8}
        assert decoded[7][0].answer == "A"

    def test_dict_containing_tag_key_is_not_mistaken_for_tagged(self):
        # A user payload may legitimately contain the reserved key; it must
        # come back as data, not be interpreted as a tagged object.
        value = {"__wire__": "task", "data": {"anything": 1}}
        assert self.roundtrip(value) == value

    def test_unknown_tag_raises(self):
        with pytest.raises(PlatformError, match="unknown wire value tag"):
            decode_value({"__wire__": "no-such-tag"})


# -- error codec -------------------------------------------------------------


class TestErrorCodec:
    def test_project_not_found_rebuilds_with_id(self):
        error = decode_error(encode_error(ProjectNotFoundError(42)))
        assert isinstance(error, ProjectNotFoundError)
        assert error.project_id == 42

    def test_task_not_found_rebuilds_with_id(self):
        error = decode_error(encode_error(TaskNotFoundError(17)))
        assert isinstance(error, TaskNotFoundError)
        assert error.task_id == 17

    def test_duplicate_key_rebuilds_with_table_and_key(self):
        error = decode_error(encode_error(DuplicateKeyError("t", "k")))
        assert isinstance(error, DuplicateKeyError)
        assert (error.table_name, error.key) == ("t", "k")

    def test_reprowd_subclass_rebuilds_by_name(self):
        error = decode_error(encode_error(StorageError("disk on fire")))
        assert isinstance(error, StorageError)
        assert "disk on fire" in str(error)

    def test_non_reprowd_exception_ships_as_platform_error(self):
        error = decode_error(encode_error(KeyError("boom")))
        assert type(error) is PlatformError
        assert "KeyError" in str(error)

    def test_unknown_kind_falls_back_to_platform_error(self):
        error = decode_error({"kind": "NoSuchError", "message": "m"})
        assert type(error) is PlatformError
        assert "m" in str(error)


# -- framing -----------------------------------------------------------------


class FakeSocket:
    """A socket double whose recv() returns pre-programmed chunks.

    Lets the framing tests force arbitrary TCP segmentation — one byte per
    recv, EOF mid-header, EOF mid-body — without racing a real peer.
    """

    def __init__(self, data: bytes, chunk_size: int = 1):
        self._chunks = [
            data[i : i + chunk_size] for i in range(0, len(data), chunk_size)
        ]
        self.sent = b""

    def recv(self, size: int) -> bytes:
        if not self._chunks:
            return b""
        chunk = self._chunks.pop(0)
        if len(chunk) > size:
            chunk, rest = chunk[:size], chunk[size:]
            self._chunks.insert(0, rest)
        return chunk

    def sendall(self, data: bytes) -> None:
        self.sent += data


def frame_bytes(payload: dict) -> bytes:
    sink = FakeSocket(b"")
    write_frame(sink, payload, DEFAULT_MAX_FRAME_BYTES)
    return sink.sent


class TestFraming:
    def test_frame_split_into_single_bytes_reads_back_whole(self):
        payload = {"op": "ping", "args": [1, 2, 3], "kwargs": {"k": "v"}}
        sock = FakeSocket(frame_bytes(payload), chunk_size=1)
        assert read_frame(sock, DEFAULT_MAX_FRAME_BYTES) == payload

    def test_two_frames_back_to_back_then_clean_eof(self):
        data = frame_bytes({"n": 1}) + frame_bytes({"n": 2})
        sock = FakeSocket(data, chunk_size=3)
        assert read_frame(sock, DEFAULT_MAX_FRAME_BYTES) == {"n": 1}
        assert read_frame(sock, DEFAULT_MAX_FRAME_BYTES) == {"n": 2}
        assert read_frame(sock, DEFAULT_MAX_FRAME_BYTES) is None

    def test_eof_inside_header_raises_connection_error(self):
        sock = FakeSocket(frame_bytes({"n": 1})[:2])
        with pytest.raises(ConnectionError, match="frame header"):
            read_frame(sock, DEFAULT_MAX_FRAME_BYTES)

    def test_eof_inside_body_raises_connection_error(self):
        data = frame_bytes({"n": 1})
        sock = FakeSocket(data[:-3])
        with pytest.raises(ConnectionError, match="frame bytes unread"):
            read_frame(sock, DEFAULT_MAX_FRAME_BYTES)

    def test_oversized_inbound_frame_rejected_from_header_alone(self):
        sock = FakeSocket(frame_bytes({"blob": "x" * 500}))
        with pytest.raises(FrameTooLargeError) as info:
            read_frame(sock, 64)
        assert info.value.max_frame_bytes == 64

    def test_oversized_outbound_frame_rejected_before_sending(self):
        sock = FakeSocket(b"")
        with pytest.raises(FrameTooLargeError):
            write_frame(sock, {"blob": "x" * 500}, 64)
        assert sock.sent == b""  # nothing hit the wire

    def test_real_socketpair_roundtrip(self):
        left, right = socket.socketpair()
        try:
            payload = {"op": "create_tasks", "args": [[1, 2], {"k": "v"}]}
            write_frame(left, payload, DEFAULT_MAX_FRAME_BYTES)
            assert read_frame(right, DEFAULT_MAX_FRAME_BYTES) == payload
        finally:
            left.close()
            right.close()


# -- retry_call backoff ------------------------------------------------------


class TestRetryCall:
    def test_non_positive_retries_raises(self):
        with pytest.raises(ValueError, match="counts attempts"):
            retry_call(lambda: 1, retries=0)
        with pytest.raises(ValueError):
            retry_call(lambda: 1, retries=-3)

    def test_negative_backoff_raises(self):
        with pytest.raises(ValueError, match="backoff"):
            retry_call(lambda: 1, retries=1, backoff=-0.1)

    def test_retries_counts_attempts_not_retries(self):
        attempts = []

        def attempt():
            attempts.append(1)
            raise PlatformUnavailableError("down")

        with pytest.raises(PlatformUnavailableError):
            retry_call(attempt, retries=3)
        assert len(attempts) == 3

    def test_zero_backoff_never_sleeps(self):
        sleeps = []

        def attempt():
            raise PlatformUnavailableError("down")

        with pytest.raises(PlatformUnavailableError):
            retry_call(attempt, retries=4, backoff=0.0, sleep=sleeps.append)
        assert sleeps == []

    def test_backoff_grows_exponentially_with_jitter_and_cap(self):
        sleeps = []

        def attempt():
            raise PlatformUnavailableError("down")

        with pytest.raises(PlatformUnavailableError):
            retry_call(
                attempt,
                retries=6,
                backoff=0.1,
                max_backoff=0.5,
                rng=random.Random(7),
                sleep=sleeps.append,
            )
        # One delay between each consecutive attempt pair — none after the
        # final failure.
        assert len(sleeps) == 5
        nominal = [0.1, 0.2, 0.4, 0.5, 0.5]  # 0.1 * 2**k capped at 0.5
        for actual, expected in zip(sleeps, nominal):
            assert 0.5 * expected <= actual <= expected

    def test_jitter_hook_makes_delays_fully_deterministic(self):
        """The seedable ``jitter=`` hook pins every delay exactly — the
        fix that keeps wire fault-recovery timing assertions from flaking.
        It also takes precedence over any rng passed alongside."""
        sleeps = []

        def attempt():
            raise PlatformUnavailableError("down")

        with pytest.raises(PlatformUnavailableError):
            retry_call(
                attempt,
                retries=5,
                backoff=0.1,
                max_backoff=0.4,
                rng=random.Random(7),  # would vary the delays; must lose
                jitter=lambda: 1.0,
                sleep=sleeps.append,
            )
        assert sleeps == [0.1, 0.2, 0.4, 0.4]  # exact: no randomness left

    def test_seeded_jitter_is_reproducible_run_to_run(self):
        def attempt():
            raise PlatformUnavailableError("down")

        def delays():
            sleeps = []
            with pytest.raises(PlatformUnavailableError):
                retry_call(
                    attempt,
                    retries=6,
                    backoff=0.05,
                    jitter=random.Random(1234).random,
                    sleep=sleeps.append,
                )
            return sleeps

        first, second = delays(), delays()
        assert first == second
        assert all(0.5 * n <= d <= n for d, n in zip(first, [0.05, 0.1, 0.2, 0.4, 0.8]))

    def test_success_after_failures_returns_value(self):
        state = {"n": 0}

        def attempt():
            state["n"] += 1
            if state["n"] < 3:
                raise PlatformUnavailableError("down")
            return "ok"

        assert retry_call(attempt, retries=5) == "ok"
        assert state["n"] == 3


# -- in-process server/client ------------------------------------------------


def make_platform(store=None, seed: int = 11) -> PlatformServer:
    pool = WorkerPool.from_config(
        WorkerPoolConfig(size=10, mean_accuracy=0.95, seed=seed)
    )
    return PlatformServer(
        worker_pool=pool, config=PlatformConfig(seed=seed), store=store
    )


SPECS = [
    {
        "info": {"url": f"img-{i}", "_true_answer": "Yes"},
        "n_assignments": 2,
        "dedup_key": f"obj-{i}",
    }
    for i in range(5)
]


class TestWireServerClient:
    def test_full_workflow_over_loopback(self):
        with WireServer(make_platform()) as server:
            client = WireClient(server.host, server.port)
            try:
                project = client.create_project("wire-unit")
                tasks = client.create_tasks(project.project_id, SPECS)
                assert len(tasks) == len(SPECS)
                created = client.simulate_work(project_id=project.project_id)
                assert created == len(SPECS) * 2
                runs = client.get_task_runs_for_project(project.project_id)
                assert set(runs) == {task.task_id for task in tasks}
                assert all(len(answers) == 2 for answers in runs.values())
                assert client.is_project_complete(project.project_id)
            finally:
                client.close()

    def test_create_tasks_replay_is_exactly_once(self):
        with WireServer(make_platform()) as server:
            client = WireClient(server.host, server.port)
            try:
                project = client.create_project("replay")
                first = client.create_tasks(project.project_id, SPECS)
                second = client.create_tasks(project.project_id, SPECS)
                assert [t.task_id for t in first] == [t.task_id for t in second]
                assert len(client.list_tasks(project.project_id)) == len(SPECS)
            finally:
                client.close()

    def test_server_errors_cross_the_wire_typed(self):
        with WireServer(make_platform()) as server:
            client = WireClient(server.host, server.port)
            try:
                with pytest.raises(ProjectNotFoundError) as info:
                    client.get_project(99999)
                assert info.value.project_id == 99999
                with pytest.raises(TaskNotFoundError):
                    client.get_task(99999)
            finally:
                client.close()

    def test_wrong_api_key_is_rejected_not_retried(self):
        with WireServer(make_platform()) as server:
            with pytest.raises(PlatformError, match="invalid API key"):
                WireClient(server.host, server.port, api_key="wrong-key")

    def test_unknown_verb_rejected_without_touching_platform(self):
        with WireServer(make_platform()) as server:
            client = WireClient(server.host, server.port)
            try:
                with pytest.raises(PlatformError, match="unknown wire operation"):
                    client.transport.call("drop_all_tables", None)
                # The connection survives a rejected verb: errors are
                # answers, not faults.
                assert client.transport.call("ping", None) == "pong"
            finally:
                client.close()

    def test_non_wire_attribute_of_remote_server_raises(self):
        with WireServer(make_platform()) as server:
            client = WireClient(server.host, server.port)
            try:
                with pytest.raises(AttributeError):
                    client.server.answer_oracle  # noqa: B018 - attribute probe
            finally:
                client.close()

    def test_stopped_server_raises_platform_unavailable(self):
        server = WireServer(make_platform())
        server.start()
        client = WireClient(server.host, server.port, max_retries=2)
        try:
            client.create_project("doomed")
            server.stop()
            with pytest.raises(PlatformUnavailableError):
                client.find_project("doomed")
        finally:
            client.close()

    def test_oversized_response_answers_with_frame_error(self):
        # Client request fits, server response does not: the server must
        # answer with a (small) typed error instead of the giant frame.
        platform = make_platform()
        with WireServer(platform, max_frame_bytes=2048) as server:
            client = WireClient(server.host, server.port, max_frame_bytes=2048)
            try:
                project = client.create_project("big")
                specs = [
                    {
                        "info": {"url": f"img-{i}", "blob": "x" * 64},
                        "n_assignments": 1,
                        "dedup_key": f"obj-{i}",
                    }
                    for i in range(64)
                ]
                with pytest.raises(PlatformError, match="exceeds") as info:
                    client.create_tasks(project.project_id, specs)
                assert not isinstance(info.value, PlatformUnavailableError)
                # Paged access still works on the same connection.
                assert client.transport.call("ping", None) == "pong"
            finally:
                client.close()

    def test_restarted_server_on_same_store_resumes_exactly_once(self, tmp_path):
        db = str(tmp_path / "platform.db")

        def open_platform():
            return make_platform(
                store=DurableTaskStore(SqliteEngine(db), owns_engine=True)
            )

        first_platform = open_platform()
        with WireServer(first_platform) as server:
            client = WireClient(server.host, server.port)
            project = client.create_project("durable")
            first = client.create_tasks(project.project_id, SPECS)
            client.close()
        first_platform.close()

        second_platform = open_platform()
        with WireServer(second_platform) as server:
            client = WireClient(server.host, server.port)
            replayed = client.create_tasks(project.project_id, SPECS)
            assert [t.task_id for t in replayed] == [t.task_id for t in first]
            assert len(client.list_tasks(project.project_id)) == len(SPECS)
            client.close()
        second_platform.close()

    def test_killed_connection_mid_call_maps_to_unavailable_then_heals(self):
        # Sever every live connection while a call is blocked server-side;
        # the client sees the retryable error and the next attempt (a fresh
        # connection) succeeds — the fault story of docs/wire.md.
        platform = make_platform()
        release = threading.Event()
        original = platform.find_project

        def slow_find(name):
            release.set()
            return original(name)

        platform.find_project = slow_find
        with WireServer(platform) as server:
            client = WireClient(server.host, server.port, max_retries=1)
            try:
                client.create_project("healing")
                worker_error: list[BaseException] = []

                def blocked_call():
                    try:
                        client.find_project("healing")
                    except BaseException as exc:  # noqa: BLE001
                        worker_error.append(exc)

                thread = threading.Thread(target=blocked_call)
                # Hold the dispatch lock so the wire call queues behind it.
                with server._dispatch_lock:
                    thread.start()
                    release_seen = release.wait(timeout=0.3)
                    assert release_seen is False  # still queued on the lock
                    with server._connections_lock:
                        for conn in list(server._connections):
                            conn.shutdown(socket.SHUT_RDWR)
                thread.join(timeout=5)
                assert worker_error
                assert isinstance(worker_error[0], PlatformUnavailableError)
                # A fresh client call reconnects and succeeds.
                found = client.find_project("healing")
                assert found is not None and found.name == "healing"
            finally:
                client.close()

    def test_wire_ops_cover_every_client_verb(self):
        # Every verb PlatformClient routes through its transport must be
        # dispatchable, or a remote client is strictly weaker than a local
        # one.  (iter_* helpers are client-side loops over paged verbs.)
        import inspect

        from repro.platform.client import PlatformClient

        verbs = {
            name
            for name, member in inspect.getmembers(
                PlatformClient, predicate=inspect.isfunction
            )
            if not name.startswith("_")
            and not name.startswith("iter_")
            and name not in {"close", "statistics"}
        }
        verbs.add("statistics")
        assert verbs <= WIRE_OPS
