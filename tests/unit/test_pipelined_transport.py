"""Unit tests for the pipelined transport stack.

Covers the :class:`AsyncTransport` concurrency layer (bounded in-flight
window, ticket-ordered server application, flush-on-read barrier), the
:class:`PipelinedClient` facade (in-flight ``create_tasks`` sub-batches,
slice-pumped iteration), the durable store's write-behind run-append batch,
the buffered manipulation log, and — the hard part — the fault-injection
scenarios where a failure lands on an in-flight batch: no duplicate tasks,
no lost appends, retries attributed to the right call name.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

import pytest

from repro.config import PlatformConfig, ReprowdConfig
from repro.exceptions import ConfigurationError, PlatformError, PlatformUnavailableError
from repro.platform.client import PipelinedClient, PlatformClient
from repro.platform.server import PlatformServer
from repro.platform.store import DurableTaskStore
from repro.platform.transport import (
    AsyncTransport,
    CountingTransport,
    DirectTransport,
    FaultInjectingTransport,
    LatencyInjectingTransport,
    Transport,
)
from repro.storage import MemoryEngine
from repro.workers.pool import WorkerPool


def make_server(seed: int = 2, store=None) -> PlatformServer:
    pool = WorkerPool.uniform(size=8, accuracy=0.95, seed=seed)
    return PlatformServer(worker_pool=pool, config=PlatformConfig(seed=seed), store=store)


def task_specs(count: int, redundancy: int = 1) -> list[dict[str, Any]]:
    return [
        {
            "info": {"object": index, "_true_answer": "Yes"},
            "n_assignments": redundancy,
            "dedup_key": f"obj-{index:05d}",
        }
        for index in range(count)
    ]


class BlockingTransport(Transport):
    """Holds every call at the transport layer until ``release`` is set."""

    def __init__(self) -> None:
        self.release = threading.Event()
        self._lock = threading.Lock()
        self.concurrent = 0
        self.max_concurrent = 0

    def call(self, name: str, method: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        with self._lock:
            self.concurrent += 1
            self.max_concurrent = max(self.max_concurrent, self.concurrent)
        try:
            assert self.release.wait(timeout=10)
            return method(*args, **kwargs)
        finally:
            with self._lock:
                self.concurrent -= 1


class JitterTransport(Transport):
    """Charges a per-call latency taken from a list, in submission order."""

    def __init__(self, delays: list[float]):
        self.delays = list(delays)
        self._lock = threading.Lock()

    def call(self, name: str, method: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        with self._lock:
            delay = self.delays.pop(0) if self.delays else 0.0
        time.sleep(delay)
        return method(*args, **kwargs)


class TestLatencyInjectingTransport:
    def test_delegates_and_reports_latency(self):
        inner = CountingTransport()
        transport = LatencyInjectingTransport(inner, latency_seconds=0.0)
        assert transport.call("add", lambda a, b: a + b, 1, 2) == 3
        stats = transport.statistics()
        assert stats["calls_by_name"] == {"add": 1}
        assert stats["latency_seconds"] == 0.0

    def test_sleeps_per_attempt(self):
        transport = LatencyInjectingTransport(latency_seconds=0.02)
        start = time.perf_counter()
        transport.call("noop", lambda: None)
        transport.call("noop", lambda: None)
        assert time.perf_counter() - start >= 0.04

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyInjectingTransport(latency_seconds=-0.1)


class TestAsyncTransport:
    def test_call_async_returns_future_results(self):
        transport = AsyncTransport(max_in_flight=4)
        futures = [
            transport.call_async("square", lambda value=v: value * value)
            for v in range(10)
        ]
        assert [future.result() for future in futures] == [v * v for v in range(10)]
        transport.close()

    def test_in_flight_bounded_and_backpressured(self):
        inner = BlockingTransport()
        transport = AsyncTransport(inner, max_in_flight=3)
        futures = [transport.call_async("noop", lambda: None) for _ in range(3)]

        submitted_fourth = threading.Event()

        def submit_fourth():
            futures.append(transport.call_async("noop", lambda: None))
            submitted_fourth.set()

        extra = threading.Thread(target=submit_fourth, daemon=True)
        extra.start()
        # With three calls parked in the transport, the fourth submission
        # must block on the in-flight window rather than queue up.
        assert not submitted_fourth.wait(timeout=0.2)
        assert transport.in_flight == 3
        inner.release.set()
        assert submitted_fourth.wait(timeout=10)
        extra.join(timeout=10)
        transport.drain()
        assert inner.max_concurrent <= 3
        assert all(future.done() for future in futures)
        transport.close()

    def test_server_application_follows_submission_order(self):
        # The first call sleeps longest in the transport; without the
        # ticket turnstile the later calls would reach the server first.
        transport = AsyncTransport(JitterTransport([0.08, 0.04, 0.0, 0.0]), max_in_flight=4)
        applied: list[int] = []
        futures = [
            transport.call_async("apply", lambda i=i: applied.append(i)) for i in range(4)
        ]
        for future in futures:
            future.result()
        assert applied == [0, 1, 2, 3]
        transport.close()

    def test_sync_call_is_a_barrier(self):
        inner = BlockingTransport()
        transport = AsyncTransport(inner, max_in_flight=2)
        order: list[str] = []
        async_future = transport.call_async("write", lambda: order.append("async"))
        release = threading.Timer(0.05, inner.release.set)
        release.start()
        # call() must drain the in-flight write before executing.
        transport.call("read", lambda: order.append("sync"))
        async_future.result()
        assert order == ["async", "sync"]
        release.cancel()
        transport.close()

    def test_retries_stay_inside_the_ticket(self):
        # Call 0 fails twice before succeeding; call 1 is submitted right
        # after and must still apply second.
        attempts = {"count": 0}
        applied: list[str] = []

        class FlakyTransport(Transport):
            def call(self, name, method, *args, **kwargs):
                if name == "flaky":
                    attempts["count"] += 1
                    if attempts["count"] <= 2:
                        raise PlatformUnavailableError("injected")
                return method(*args, **kwargs)

        transport = AsyncTransport(FlakyTransport(), max_in_flight=2)
        first = transport.call_async("flaky", lambda: applied.append("first"), retries=5)
        second = transport.call_async("steady", lambda: applied.append("second"))
        first.result()
        second.result()
        assert applied == ["first", "second"]
        assert attempts["count"] == 3
        transport.close()

    def test_exhausted_retries_surface_on_the_future(self):
        class AlwaysDown(Transport):
            def call(self, name, method, *args, **kwargs):
                if name == "doomed":
                    raise PlatformUnavailableError("down")
                return method(*args, **kwargs)

        transport = AsyncTransport(AlwaysDown(), max_in_flight=2)
        future = transport.call_async("doomed", lambda: None, retries=3)
        with pytest.raises(PlatformUnavailableError):
            future.result()
        # A failed call must not wedge the turnstile for later calls.
        assert transport.call_async("after", lambda: "ok").result() == "ok"
        transport.close()

    def test_statistics_compose_with_inner(self):
        transport = AsyncTransport(CountingTransport(), max_in_flight=2)
        transport.call_async("noop", lambda: None).result()
        transport.call("noop", lambda: None)
        stats = transport.statistics()
        assert stats["calls_by_name"] == {"noop": 2}
        assert stats["async"]["submitted"] == 1
        assert stats["async"]["completed"] == 1
        assert stats["async"]["max_in_flight"] == 2
        transport.close()

    def test_invalid_max_in_flight(self):
        with pytest.raises(ValueError):
            AsyncTransport(max_in_flight=0)


class TestPipelinedClientEquivalence:
    """The pipelined client is observationally identical to the serial one."""

    NUM_TASKS = 403

    def run_experiment(self, client: PlatformClient, page_size: int = 40):
        project = client.create_project("p")
        tasks = client.create_tasks(project.project_id, task_specs(self.NUM_TASKS))
        client.simulate_work(project.project_id)
        collected = [
            (task_id, [(run.worker_id, run.answer) for run in runs])
            for task_id, runs in client.iter_task_runs_for_project(
                project.project_id, page_size
            )
        ]
        ids = list(client.iter_project_task_ids(project.project_id, page_size))
        return [task.task_id for task in tasks], collected, ids

    def test_same_ids_answers_and_order_as_serial(self):
        serial = self.run_experiment(PlatformClient(make_server()))
        pipelined_client = PipelinedClient(
            make_server(), batch_size=50, max_in_flight=4
        )
        pipelined = self.run_experiment(pipelined_client)
        assert serial == pipelined
        pipelined_client.close()

    def test_create_tasks_returns_spec_order(self):
        client = PipelinedClient(make_server(), batch_size=25, max_in_flight=4)
        project = client.create_project("p")
        tasks = client.create_tasks(project.project_id, task_specs(130))
        assert [task.info["object"] for task in tasks] == list(range(130))
        client.close()

    def test_small_batch_uses_the_serial_path(self):
        counting = CountingTransport()
        client = PipelinedClient(
            make_server(), transport=counting, batch_size=100, max_in_flight=4
        )
        project = client.create_project("p")
        client.create_tasks(project.project_id, task_specs(40))
        assert counting.calls_by_name["create_tasks"] == 1
        client.close()

    def test_dedup_replay_returns_existing_tasks(self):
        client = PipelinedClient(make_server(), batch_size=30, max_in_flight=4)
        project = client.create_project("p")
        first = client.create_tasks(project.project_id, task_specs(90))
        replay = client.create_tasks(project.project_id, task_specs(90))
        assert [task.task_id for task in first] == [task.task_id for task in replay]
        assert client.statistics()["tasks"] == 90
        client.close()

    def test_abandoned_iteration_settles_in_flight_slices(self):
        client = PipelinedClient(make_server(), batch_size=50, max_in_flight=4)
        project = client.create_project("p")
        client.create_tasks(project.project_id, task_specs(300))
        client.simulate_work(project.project_id)
        stream = client.iter_task_runs_for_project(project.project_id, 20)
        for _ in range(5):
            next(stream)
        stream.close()
        # The barrier of the next sync verb must find nothing in flight.
        assert client.transport.in_flight == 0
        assert client.statistics()["tasks"] == 300
        client.close()

    def test_server_error_mid_batch_settles_all_sub_batches(self):
        client = PipelinedClient(make_server(), batch_size=10, max_in_flight=4)
        project = client.create_project("p")
        specs = task_specs(40)
        del specs[15]["info"]  # second sub-batch fails server-side validation
        with pytest.raises(PlatformError):
            client.create_tasks(project.project_id, specs)
        # Every other sub-batch was settled before the error propagated:
        # nothing still runs behind the caller's back.
        assert client.transport.in_flight == 0
        client.close()

    def test_slice_stream_ends_at_the_first_short_page(self):
        """Nothing past the first short slice is yielded — even when a
        speculative later slice comes back non-empty (tasks appended
        mid-iteration), the stream must match the serial cursor iterator,
        which ends at the short page rather than yielding a gapped tail."""
        client = PipelinedClient(make_server(), batch_size=10, max_in_flight=4)
        pages = {0: list(range(4)), 4: [4, 5], 8: [12, 13, 14, 15]}

        def fake_slice(project_id, limit, offset):
            return pages.get(offset, [])

        yielded = list(client._iter_slice_pages("fake", fake_slice, 1, 4))
        assert yielded == [[0, 1, 2, 3], [4, 5]]
        assert client.transport.in_flight == 0
        client.close()

    def test_slice_verbs_match_cursor_pages(self):
        client = PlatformClient(make_server())
        project = client.create_project("p")
        client.create_tasks(project.project_id, task_specs(55))
        cursor_ids = list(client.iter_project_task_ids(project.project_id, 10))
        slice_ids = []
        for offset in range(0, 70, 10):
            slice_ids.extend(
                client.list_project_task_ids_slice(project.project_id, 10, offset)
            )
        assert slice_ids == cursor_ids
        # Past-the-end slices are empty, not errors.
        assert client.get_task_runs_slice(project.project_id, 10, 1000) == []
        with pytest.raises(PlatformError):
            client.list_project_task_ids_slice(project.project_id, 0, 0)
        with pytest.raises(PlatformError):
            client.get_task_runs_slice(project.project_id, 10, -1)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            PipelinedClient(make_server(), batch_size=0)


class TestPipelinedFaultInjection:
    """A failure landing on an in-flight batch must not corrupt anything."""

    def test_failed_in_flight_batches_do_not_duplicate_tasks(self):
        # Which attempts fail is scheduling-dependent under the async
        # transport (shared RNG across workers), so the retry budget is
        # sized for the worst observable streak, and the assertions are
        # invariants, not exact failure placements.
        fault = FaultInjectingTransport(failure_rate=0.35, seed=11)
        client = PipelinedClient(
            make_server(), transport=fault, batch_size=25, max_in_flight=4, max_retries=20
        )
        project = client.create_project("p")
        tasks = client.create_tasks(project.project_id, task_specs(250))
        assert len(tasks) == 250
        assert len({task.task_id for task in tasks}) == 250
        assert client.statistics()["tasks"] == 250
        stats = fault.statistics()
        assert stats["failures_by_name"].get("create_tasks", 0) > 0
        # Attempt accounting: 10 sub-batches each retried until success, so
        # attempts == failures + successful batch applications.
        assert stats["calls_by_name"]["create_tasks"] == (
            stats["failures_by_name"].get("create_tasks", 0) + 250 // 25
        )
        client.close()

    def test_failures_during_slice_collection_are_retried_per_slice(self):
        fault = FaultInjectingTransport(failure_rate=0.3, seed=23)
        client = PipelinedClient(
            make_server(), transport=fault, batch_size=50, max_in_flight=4, max_retries=20
        )
        project = client.create_project("p")
        client.create_tasks(project.project_id, task_specs(300, redundancy=2))
        client.simulate_work(project.project_id)
        collected = dict(client.iter_task_runs_for_project(project.project_id, 30))
        assert len(collected) == 300
        assert all(len(runs) == 2 for runs in collected.values())
        assert fault.statistics()["failures_injected"] > 0
        client.close()

    def test_no_lost_appends_with_write_behind_batch_under_faults(self):
        engine = MemoryEngine()
        store = DurableTaskStore(engine, append_batch_size=64)
        fault = FaultInjectingTransport(failure_rate=0.3, duplicate_rate=0.2, seed=5)
        client = PipelinedClient(
            make_server(store=store),
            transport=fault,
            batch_size=40,
            max_in_flight=4,
            max_retries=20,
        )
        project = client.create_project("p")
        client.create_tasks(project.project_id, task_specs(160, redundancy=2))
        created = client.simulate_work(project.project_id)
        assert created == 320
        # Every append survived the batching + faults, durably: a store
        # reopened on the same engine sees all of them.
        reopened = PlatformServer(
            worker_pool=WorkerPool.uniform(size=8, accuracy=0.95, seed=2),
            config=PlatformConfig(seed=2),
            store=DurableTaskStore(engine),
        )
        assert reopened.statistics()["task_runs"] == 320
        assert reopened.is_project_complete(project.project_id)
        client.close()

    def test_exhausted_retries_propagate_from_create_tasks(self):
        fault = FaultInjectingTransport(failure_rate=1.0, seed=3)
        server = make_server()
        project = server.create_project("p")  # created server-side: the
        # transport is fully down, so every client call must fail.
        client = PipelinedClient(
            server, transport=fault, batch_size=10, max_in_flight=2, max_retries=2
        )
        with pytest.raises(PlatformUnavailableError):
            client.create_tasks(project.project_id, task_specs(50))
        client.close()


class TestDurableStoreAppendBatch:
    def test_reads_merge_the_buffer(self):
        engine = MemoryEngine()
        store = DurableTaskStore(engine, append_batch_size=1000)
        server = make_server(store=store)
        client = PlatformClient(server)
        project = client.create_project("p")
        task = client.create_task(project.project_id, {"object": 1, "_true_answer": "Yes"}, 3)
        server._fill_task(server.get_task(task.task_id), None, 0)
        # Before any flush the engine may be behind, but the store is not.
        assert store.run_count(task.task_id) == 3
        assert len(store.runs_for_task(task.task_id)) == 3
        assert [len(runs) for runs in store.runs_for_tasks([task.task_id])] == [3]
        store.flush()
        assert len(engine.get("platform::runs", f"{task.task_id:012d}")) == 3

    def test_simulate_work_flushes_on_return(self):
        engine = MemoryEngine()
        store = DurableTaskStore(engine, append_batch_size=10_000)
        client = PlatformClient(make_server(store=store))
        project = client.create_project("p")
        client.create_tasks(project.project_id, task_specs(20, redundancy=2))
        client.simulate_work(project.project_id)
        assert store._pending_run_count == 0
        reopened = DurableTaskStore(engine)
        assert reopened.counts()["task_runs"] == 40

    def test_lost_buffer_converges_on_rerun(self):
        engine = MemoryEngine()
        store = DurableTaskStore(engine, append_batch_size=10_000)
        server = make_server(store=store)
        client = PlatformClient(server)
        project = client.create_project("p")
        client.create_tasks(project.project_id, task_specs(10, redundancy=2))
        # Crash mid-simulation: answers for a few tasks sit in the buffer.
        client.simulate_work(project.project_id, max_assignments=6)
        store._pending_runs = {}
        store._pending_run_count = 0
        store._total_runs = None  # discard the optimistic cache with the buffer
        # The "restarted" server tops the project up to exactly-once.
        restarted = PlatformServer(
            worker_pool=WorkerPool.uniform(size=8, accuracy=0.95, seed=2),
            config=PlatformConfig(seed=2),
            store=DurableTaskStore(engine),
        )
        restarted.simulate_work(project.project_id)
        assert restarted.is_project_complete(project.project_id)
        assert restarted.statistics()["task_runs"] == 20

    def test_counts_include_buffered_runs(self):
        engine = MemoryEngine()
        store = DurableTaskStore(engine, append_batch_size=10_000)
        server = make_server(store=store)
        client = PlatformClient(server)
        project = client.create_project("p")
        task = client.create_task(project.project_id, {"object": 1, "_true_answer": "Yes"}, 2)
        server._fill_task(server.get_task(task.task_id), None, 0)
        assert store.counts()["task_runs"] == 2

    def test_invalid_append_batch_size(self):
        with pytest.raises(ValueError):
            DurableTaskStore(MemoryEngine(), append_batch_size=0)


class TestBufferedManipulationLog:
    def test_buffered_records_flush_when_full(self, memory_engine):
        from repro.core.manipulations import ManipulationLog

        log = ManipulationLog(memory_engine, "t", buffer_size=3)
        log.record("a")
        log.record("b")
        assert memory_engine.count("t::manipulations") == 0
        log.record("c")  # fills the buffer -> one put_many
        assert memory_engine.count("t::manipulations") == 3
        assert log.operations() == ["a", "b", "c"]

    def test_reads_flush_the_buffer(self, memory_engine):
        from repro.core.manipulations import ManipulationLog

        log = ManipulationLog(memory_engine, "t", buffer_size=10)
        log.record("a")
        assert len(log) == 1  # flush-on-read
        log.record("b")
        assert [m.operation for m in log.history()] == ["a", "b"]
        assert [m.sequence for m in log.history()] == [1, 2]

    def test_record_many_lands_after_buffered_entries(self, memory_engine):
        from repro.core.manipulations import ManipulationLog

        log = ManipulationLog(memory_engine, "t", buffer_size=10)
        log.record("a")
        log.record_many([{"operation": "b"}, {"operation": "c"}])
        assert log.operations() == ["a", "b", "c"]

    def test_invalid_buffer_size(self, memory_engine):
        from repro.core.manipulations import ManipulationLog

        with pytest.raises(ValueError):
            ManipulationLog(memory_engine, "t", buffer_size=0)


class TestConfigWiring:
    def test_context_builds_pipelined_client(self):
        import dataclasses

        from repro import CrowdContext

        config = ReprowdConfig.in_memory(seed=3)
        config = dataclasses.replace(
            config,
            platform=dataclasses.replace(
                config.platform, transport="pipelined", max_in_flight=3
            ),
        )
        with CrowdContext(config=config) as context:
            assert isinstance(context.client, PipelinedClient)
            assert isinstance(context.client.transport, AsyncTransport)
            assert context.client.max_in_flight == 3

    def test_pipelined_context_wraps_fault_injection(self):
        import dataclasses

        from repro import CrowdContext

        config = ReprowdConfig.in_memory(seed=3)
        config = dataclasses.replace(
            config,
            platform=dataclasses.replace(
                config.platform, transport="pipelined", failure_rate=0.2
            ),
        )
        with CrowdContext(config=config) as context:
            assert isinstance(context.client.transport, AsyncTransport)
            assert isinstance(context.client.transport.inner, FaultInjectingTransport)

    def test_unknown_transport_rejected(self):
        import dataclasses

        from repro import CrowdContext

        config = ReprowdConfig.in_memory(seed=3)
        config = dataclasses.replace(
            config, platform=dataclasses.replace(config.platform, transport="quantum")
        )
        with pytest.raises(ConfigurationError):
            CrowdContext(config=config)
