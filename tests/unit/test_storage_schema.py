"""Unit tests for repro.storage.schema and repro.storage.records."""

from __future__ import annotations

import pytest

from repro.exceptions import CrowdDataError, StorageError
from repro.storage.records import Record, RecordCodec
from repro.storage.schema import ColumnSpec, TableSchema


class TestRecord:
    def test_bump_increments_version(self):
        record = Record(key="k", value=1)
        bumped = record.bump(2)
        assert bumped.version == 2
        assert bumped.value == 2
        assert record.version == 1  # original unchanged


class TestRecordCodec:
    def test_roundtrip(self):
        value = {"a": [1, 2, {"b": None}]}
        assert RecordCodec.decode(RecordCodec.encode(value)) == value

    def test_encode_rejects_non_json(self):
        with pytest.raises(StorageError):
            RecordCodec.encode(object())

    def test_decode_rejects_garbage(self):
        with pytest.raises(StorageError):
            RecordCodec.decode("{not json")


class TestTableSchema:
    def test_standard_schema_columns(self):
        schema = TableSchema.standard("imgs")
        assert schema.column_names() == ["id", "object", "task", "result"]

    def test_standard_persists_task_and_result_only(self):
        schema = TableSchema.standard("imgs")
        assert schema.persistent_columns() == ["task", "result"]

    def test_standard_with_derived(self):
        schema = TableSchema.standard("imgs", derived=["mv"])
        assert schema.has_column("mv")
        assert not schema.column("mv").persistent

    def test_add_duplicate_column_rejected(self):
        schema = TableSchema.standard("imgs")
        with pytest.raises(CrowdDataError):
            schema.add_column(ColumnSpec("task"))

    def test_missing_column_lookup_raises(self):
        schema = TableSchema.standard("imgs")
        with pytest.raises(CrowdDataError):
            schema.column("nope")

    def test_describe_is_json_friendly(self):
        description = TableSchema.standard("imgs").describe()
        assert description[0] == {
            "name": "id",
            "persistent": False,
            "description": "row identifier",
        }
