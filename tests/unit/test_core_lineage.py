"""Unit tests for lineage records and lineage queries."""

from __future__ import annotations

import pytest

from repro.core.lineage import AnswerLineage, LineageQuery
from repro.exceptions import LineageError


def make_record(
    worker="w1", answer="Yes", task=1, run=1, obj="k1",
    published=0.0, submitted=10.0, latency=5.0, order=1,
):
    return AnswerLineage(
        object_key=obj, task_id=task, run_id=run, worker_id=worker, answer=answer,
        published_at=published, submitted_at=submitted, latency_seconds=latency,
        assignment_order=order,
    )


@pytest.fixture
def records():
    return [
        make_record(worker="w1", answer="Yes", task=1, run=1, obj="a", submitted=10, order=1),
        make_record(worker="w2", answer="No", task=1, run=2, obj="a", submitted=12, order=2),
        make_record(worker="w1", answer="Yes", task=2, run=3, obj="b", submitted=8, order=1,
                    published=1.0),
        make_record(worker="w3", answer="Yes", task=2, run=4, obj="b", submitted=20, order=2,
                    published=1.0),
    ]


class TestAnswerLineage:
    def test_dict_roundtrip(self):
        record = make_record()
        assert AnswerLineage.from_dict(record.to_dict()) == record


class TestLineageQuery:
    def test_empty_lineage_rejected(self):
        with pytest.raises(LineageError):
            LineageQuery([])

    def test_workers_sorted_distinct(self, records):
        assert LineageQuery(records).workers() == ["w1", "w2", "w3"]

    def test_tasks(self, records):
        assert LineageQuery(records).tasks() == [1, 2]

    def test_records_in_submission_order(self, records):
        ordered = LineageQuery(records).records()
        assert [record.submitted_at for record in ordered] == [8, 10, 12, 20]

    def test_answers_by_worker(self, records):
        answers = LineageQuery(records).answers_by_worker("w1")
        assert len(answers) == 2
        assert [record.task_id for record in answers] == [2, 1]

    def test_answers_for_object_in_assignment_order(self, records):
        answers = LineageQuery(records).answers_for_object("a")
        assert [record.assignment_order for record in answers] == [1, 2]

    def test_worker_contributions(self, records):
        assert LineageQuery(records).worker_contributions() == {"w1": 2, "w2": 1, "w3": 1}

    def test_publication_and_collection_windows(self, records):
        query = LineageQuery(records)
        assert query.publication_window() == (0.0, 1.0)
        assert query.collection_window() == (8, 20)

    def test_mean_latency(self, records):
        assert LineageQuery(records).mean_latency() == 5.0

    def test_answer_distribution(self, records):
        assert LineageQuery(records).answer_distribution() == {"Yes": 3, "No": 1}

    def test_timeline_sorted_by_time(self, records):
        timeline = LineageQuery(records).timeline()
        times = [event["time"] for event in timeline]
        assert times == sorted(times)
        assert set(timeline[0]) == {"time", "worker", "task", "answer"}

    def test_per_object_summary(self, records):
        summary = LineageQuery(records).per_object_summary()
        assert summary["a"]["answers"] == 2
        assert summary["b"]["workers"] == ["w1", "w3"]

    def test_len(self, records):
        assert len(LineageQuery(records)) == 4
