"""Persistent ring sequence index: snapshot, replay, invalidation.

The ring engine snapshots each table's sequence index into the ``__ring__``
meta area on flush/close so a reopen can skip the O(K) full-member rebuild.
A snapshot is only *advisory*: the loader must prove it replays to the exact
index a rebuild would produce, or pay the rebuild.  Four layers of proof:

* round-trip level — flush writes one ``idx::<table>`` record to every live
  member, a clean reopen loads it without scanning a single data record
  (the O(1)-reopen contract), and an un-dirty flush never rewrites it;
* crash level — a sweep over **every** window of a post-snapshot op script
  (appends, overwrites, deletes, re-inserts) abandons the engine without
  close, reopens over the same children, and requires the index and full
  scan output to be byte-identical to a forced-rebuild reference — on
  memory and sqlite children alike;
* staleness level — a rebalance moves the epoch past the snapshot, a
  degraded (member-down) snapshot names too few members, and a dropped
  table takes its snapshot with it: each must be rejected or removed, and
  the next flush must refresh a loadable one;
* repair level — the post-degradation healing pass (sync + ``repair``)
  must leave an index identical to the rebuild, snapshot or not.
"""

from __future__ import annotations

import pytest

from repro.storage import ConsistentHashEngine, MemoryEngine
from repro.storage.ring import RING_META_TABLE, _INDEX_KEY_PREFIX
from repro.storage.testing import build_child_engine

pytestmark = pytest.mark.ring

VNODES = 16
TABLE = "items"
NAMES = ("ring-00", "ring-01", "ring-02")

#: Child kinds the crash sweep runs over.  ``log`` children are covered by
#: the rebalance sweep; the snapshot validation logic is child-agnostic, so
#: memory (same objects survive) and sqlite (true reopen from disk, where
#: overwrites keep their physical scan position) are the interesting media.
SWEEP_KINDS = ("memory", "sqlite")


def build_children(kind, base_path):
    return {name: build_child_engine(kind, base_path, name) for name in NAMES}


def make_ring(children, replicas=1):
    return ConsistentHashEngine(
        dict(children), virtual_nodes=VNODES, replicas=replicas
    )


def reopen_children(kind, base_path, children):
    """Model the process dying: durable kinds reopen from disk through new
    child objects, memory children hand the same live objects back."""
    if kind == "memory":
        return dict(children)
    return build_children(kind, base_path)


def apply_ops(engine, ops):
    for op, key, value in ops:
        if op == "put":
            engine.put(TABLE, key, value)
        else:
            engine.delete(TABLE, key)


def base_ops():
    """Pre-snapshot history: inserts, an overwrite, a delete (tombstone)."""
    ops = [("put", f"k{i:02d}", {"i": i}) for i in range(12)]
    ops.append(("put", "k03", {"i": 3, "rev": 2}))
    ops.append(("delete", "k05", None))
    return ops


def post_snapshot_script():
    """Every hazard class a stale snapshot must survive, in one script.

    The first three ops (appends and an in-place overwrite) keep the
    snapshot provably current — the loader must accept it.  Deletes and
    re-inserts afterwards must either be detected (count mismatch, dead
    tail cursor) or replay to the same index.
    """
    return [
        ("put", "k12", {"i": 12}),
        ("put", "k13", {"i": 13}),
        ("put", "k03", {"i": 3, "rev": 3}),
        ("delete", "k01", None),
        ("put", "k01", {"i": 1, "back": True}),
        ("delete", "k12", None),
        ("put", "k14", {"i": 14}),
        ("delete", "k13", None),
    ]


def index_state(ring):
    index = ring._index(TABLE)
    return dict(index.seq_by_key), list(index.live_after(0))


def full_state(ring):
    return [(r.key, r.value, r.version) for r in ring.scan(TABLE)]


def strip_snapshots(ring):
    """Delete the ``idx::`` records so the next open pays the rebuild."""
    for child in ring._children.values():
        child.delete(RING_META_TABLE, _INDEX_KEY_PREFIX + TABLE)


class CountingChild(MemoryEngine):
    """Memory child that counts the data records its scans yield."""

    def __init__(self):
        super().__init__()
        self.data_records_scanned = 0

    def scan(self, table_name, limit=None, start_after=None):
        for record in super().scan(table_name, limit=limit, start_after=start_after):
            if table_name == TABLE:
                self.data_records_scanned += 1
            yield record


class TestSnapshotRoundTrip:
    def loaded(self, tmp_path):
        children = build_children("memory", tmp_path)
        ring = make_ring(children)
        ring.create_table(TABLE)
        apply_ops(ring, base_ops())
        return ring, children

    def test_flush_writes_snapshot_to_every_member(self, tmp_path):
        ring, children = self.loaded(tmp_path)
        ring.flush()
        for child in children.values():
            snapshot = child.get(RING_META_TABLE, _INDEX_KEY_PREFIX + TABLE)
            assert snapshot is not None
            assert snapshot["epoch"] == 1
            assert set(snapshot["members"]) == set(NAMES)
            # Only live keys are stored — the k05 tombstone is not.
            assert "k05" not in snapshot["keys"]
            assert len(snapshot["keys"]) == len(snapshot["seqs"]) == ring.count(TABLE)

    def test_close_writes_snapshot_too(self, tmp_path):
        ring, children = self.loaded(tmp_path)
        ring.close()
        assert all(
            child.get(RING_META_TABLE, _INDEX_KEY_PREFIX + TABLE) is not None
            for child in children.values()
        )

    def test_clean_flush_does_not_rewrite_the_snapshot(self, tmp_path):
        ring, children = self.loaded(tmp_path)
        ring.flush()
        child = children[NAMES[0]]
        version = child.get_record(RING_META_TABLE, _INDEX_KEY_PREFIX + TABLE).version
        ring.flush()  # nothing dirty: a sync barrier must not pay O(K)
        assert (
            child.get_record(RING_META_TABLE, _INDEX_KEY_PREFIX + TABLE).version
            == version
        )
        ring.put(TABLE, "k90", {"i": 90})
        ring.flush()  # dirty again: the snapshot must refresh
        assert (
            child.get_record(RING_META_TABLE, _INDEX_KEY_PREFIX + TABLE).version
            == version + 1
        )

    def test_snapshot_reopen_scans_no_data_records(self, tmp_path):
        """The O(1)-reopen contract: loading a current snapshot reads meta
        records and member tails only — zero data-table records — while the
        forced rebuild pays one record per key per replica."""
        children = {name: CountingChild() for name in NAMES}
        ring = make_ring(children)
        ring.create_table(TABLE)
        for i in range(60):
            ring.put(TABLE, f"bulk-{i:03d}", {"i": i})
        ring.flush()

        for child in children.values():
            child.data_records_scanned = 0
        reopened = make_ring(children)
        reopened._index(TABLE)
        assert sum(c.data_records_scanned for c in children.values()) == 0

        strip_snapshots(reopened)
        for child in children.values():
            child.data_records_scanned = 0
        rebuilt = make_ring(children)
        rebuilt._index(TABLE)
        assert sum(c.data_records_scanned for c in children.values()) == 60

        assert index_state(reopened) == index_state(rebuilt)


class TestCrashWindowSweep:
    """Crash between the snapshot and every later write; reopen; compare.

    The crash model is abandonment: the first wrapper is dropped without
    ``close`` (so the snapshot on disk is stale by exactly the window's op
    suffix), a second wrapper reopens the same children and serves from
    snapshot + replay, and a third — with the snapshots stripped — pays the
    full rebuild.  The two must agree byte-for-byte on the index *and* the
    merged scan, for every window, on every child medium.
    """

    @pytest.mark.parametrize("kind", SWEEP_KINDS)
    def test_every_window_replays_to_the_rebuilt_index(self, kind, tmp_path):
        script = post_snapshot_script()
        for window in range(len(script) + 1):
            base = tmp_path / f"window-{window:02d}"
            base.mkdir()
            children = build_children(kind, base)
            ring = make_ring(children)
            ring.create_table(TABLE)
            apply_ops(ring, base_ops())
            ring.flush()  # the durable snapshot every window goes stale from
            apply_ops(ring, script[:window])
            # Crash: abandon the wrapper; the snapshot was never refreshed.

            survivors = reopen_children(kind, base, children)
            reopened = make_ring(survivors)
            if window <= 3:
                # Appends and in-place overwrites keep the snapshot provable;
                # the loader must take the fast path, not fall back silently.
                assert reopened._load_index_snapshot(TABLE) is not None, window
            snap_index = index_state(reopened)
            snap_scan = full_state(reopened)

            strip_snapshots(reopened)
            rebuilt = make_ring(reopen_children(kind, base, survivors))
            assert index_state(rebuilt) == snap_index, (kind, window)
            assert full_state(rebuilt) == snap_scan, (kind, window)

            reference = MemoryEngine()
            reference.create_table(TABLE)
            apply_ops(reference, base_ops())
            apply_ops(reference, script[:window])
            assert [
                (r.key, r.value, r.version) for r in reference.scan(TABLE)
            ] == snap_scan, (kind, window)


class TestStalenessAndInvalidation:
    def test_rebalance_moves_the_epoch_past_the_snapshot(self, tmp_path):
        children = build_children("memory", tmp_path)
        ring = make_ring(children)
        ring.create_table(TABLE)
        apply_ops(ring, base_ops())
        ring.flush()
        joiner = MemoryEngine()
        ring.rebalance(add={"ring-03": joiner})

        everyone = {**children, "ring-03": joiner}
        reopened = make_ring(everyone)
        # The epoch-1 snapshot must be rejected — key placement changed.
        assert reopened._load_index_snapshot(TABLE) is None
        rebuilt_index = index_state(reopened)

        # The rebuild marks the table dirty; flush refreshes the snapshot
        # at the new epoch, and the *next* open takes the fast path again.
        reopened.flush()
        third = make_ring(everyone)
        assert third._load_index_snapshot(TABLE) is not None
        assert index_state(third) == rebuilt_index
        assert full_state(third) == full_state(reopened)

    def test_degraded_snapshot_is_rejected_on_full_reopen(self, tmp_path):
        children = build_children("memory", tmp_path)
        ring = make_ring(children, replicas=2)
        ring.create_table(TABLE)
        apply_ops(ring, base_ops())
        ring.flush()
        ring.mark_down("ring-02")
        ring.put(TABLE, "k50", {"i": 50})
        ring.flush()  # degraded snapshot: members dict lacks ring-02

        revived = make_ring(children, replicas=2)  # returning-member sync
        assert revived._load_index_snapshot(TABLE) is None
        strip_state = index_state(revived)
        strip_snapshots(revived)
        rebuilt = make_ring(children, replicas=2)
        assert index_state(rebuilt) == strip_state

    def test_repair_then_flush_refreshes_a_loadable_snapshot(self, tmp_path):
        children = build_children("memory", tmp_path)
        ring = make_ring(children, replicas=2)
        ring.create_table(TABLE)
        apply_ops(ring, base_ops())
        ring.flush()
        ring.mark_down("ring-02")
        ring.put(TABLE, "k60", {"i": 60})
        ring.delete(TABLE, "k02")

        revived = make_ring(children, replicas=2)
        revived.repair()
        # Building the index pays the rebuild (the pre-degradation snapshot
        # no longer proves current) and marks the table dirty, so the flush
        # below writes a fresh post-repair snapshot.
        healed = index_state(revived)
        revived.flush()
        healed_scan = full_state(revived)

        reopened = make_ring(children, replicas=2)
        assert reopened._load_index_snapshot(TABLE) is not None
        assert index_state(reopened) == healed
        assert full_state(reopened) == healed_scan

        strip_snapshots(reopened)
        rebuilt = make_ring(children, replicas=2)
        assert index_state(rebuilt) == healed
        assert full_state(rebuilt) == healed_scan

    def test_replayed_tail_marks_the_snapshot_for_refresh(self, tmp_path):
        children = build_children("memory", tmp_path)
        ring = make_ring(children)
        ring.create_table(TABLE)
        apply_ops(ring, base_ops())
        ring.flush()
        version = (
            children[NAMES[0]]
            .get_record(RING_META_TABLE, _INDEX_KEY_PREFIX + TABLE)
            .version
        )
        ring.put(TABLE, "k70", {"i": 70})
        # Crash: abandon the wrapper; the snapshot is stale by one write.

        survivor = make_ring(children)
        stale = survivor._load_index_snapshot(TABLE)
        assert stale is not None and "k70" in stale.seq_by_key  # replayed
        replayed = index_state(survivor)  # also marks the table dirty
        survivor.flush()
        refreshed = children[NAMES[0]].get(
            RING_META_TABLE, _INDEX_KEY_PREFIX + TABLE
        )
        # The flush re-persisted a snapshot that now includes the replayed
        # key, so the next open replays nothing.
        assert refreshed["epoch"] == 1
        assert "k70" in refreshed["keys"]
        assert (
            children[NAMES[0]]
            .get_record(RING_META_TABLE, _INDEX_KEY_PREFIX + TABLE)
            .version
            == version + 1
        )
        assert index_state(make_ring(children)) == replayed

    def test_drop_table_removes_the_snapshot_everywhere(self, tmp_path):
        children = build_children("memory", tmp_path)
        ring = make_ring(children)
        ring.create_table(TABLE)
        apply_ops(ring, base_ops())
        ring.flush()
        ring.drop_table(TABLE)
        for child in children.values():
            assert child.get(RING_META_TABLE, _INDEX_KEY_PREFIX + TABLE) is None
        # Recreating the table starts from an empty, snapshot-free index.
        ring.create_table(TABLE)
        assert full_state(ring) == []
