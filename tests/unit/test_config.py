"""Unit tests for repro.config."""

from __future__ import annotations

import os

import pytest

from repro.config import (
    DEFAULT_REDUNDANCY,
    PlatformConfig,
    ReprowdConfig,
    StorageConfig,
    WorkerPoolConfig,
)


class TestStorageConfig:
    def test_defaults(self):
        config = StorageConfig()
        assert config.engine == "sqlite"
        assert config.synchronous is True

    def test_with_path_returns_copy(self):
        config = StorageConfig()
        updated = config.with_path("other.db")
        assert updated.path == "other.db"
        assert config.path != "other.db"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            StorageConfig().path = "x"  # type: ignore[misc]


class TestReprowdConfig:
    def test_in_memory_factory(self):
        config = ReprowdConfig.in_memory(seed=99)
        assert config.storage.engine == "memory"
        assert config.platform.seed == 99
        assert config.workers.seed == 99

    def test_sqlite_factory(self):
        config = ReprowdConfig.sqlite("/tmp/x.db", seed=3)
        assert config.storage.engine == "sqlite"
        assert config.storage.path == "/tmp/x.db"

    def test_from_mapping_roundtrip(self):
        config = ReprowdConfig.from_mapping(
            {
                "storage": {"engine": "memory", "path": ":memory:"},
                "platform": {"default_redundancy": 5},
                "workers": {"size": 10, "mean_accuracy": 0.9},
                "seed": 42,
            }
        )
        assert config.storage.engine == "memory"
        assert config.platform.default_redundancy == 5
        assert config.workers.size == 10
        assert config.seed == 42

    def test_from_mapping_defaults(self):
        config = ReprowdConfig.from_mapping({})
        assert config.platform.default_redundancy == DEFAULT_REDUNDANCY

    def test_resolve_db_path_memory(self):
        assert ReprowdConfig.in_memory().resolve_db_path() == ":memory:"

    def test_resolve_db_path_relative(self, tmp_path):
        config = ReprowdConfig.sqlite("rel.db")
        resolved = config.resolve_db_path(base_dir=str(tmp_path))
        assert resolved == os.path.join(str(tmp_path), "rel.db")

    def test_resolve_db_path_absolute(self):
        config = ReprowdConfig.sqlite("/abs/path.db")
        assert config.resolve_db_path(base_dir="/elsewhere") == "/abs/path.db"


class TestPlatformAndWorkerConfig:
    def test_platform_defaults(self):
        config = PlatformConfig()
        assert config.default_redundancy == DEFAULT_REDUNDANCY
        assert config.failure_rate == 0.0

    def test_worker_pool_defaults(self):
        config = WorkerPoolConfig()
        assert config.size == 25
        assert 0.0 <= config.mean_accuracy <= 1.0
