"""Unit tests exercising every storage engine through the common interface."""

from __future__ import annotations

import pytest

from repro.config import StorageConfig
from repro.exceptions import (
    ConfigurationError,
    DuplicateKeyError,
    StorageError,
    TableNotFoundError,
)
from repro.storage import LogStructuredEngine, MemoryEngine, SqliteEngine, open_engine


class TestTableManagement:
    def test_create_and_list(self, any_engine):
        any_engine.create_table("t1")
        any_engine.create_table("t2")
        assert any_engine.list_tables() == ["t1", "t2"]

    def test_create_is_idempotent(self, any_engine):
        any_engine.create_table("t")
        any_engine.create_table("t")
        assert any_engine.list_tables() == ["t"]

    def test_has_table(self, any_engine):
        assert not any_engine.has_table("t")
        any_engine.create_table("t")
        assert any_engine.has_table("t")

    def test_drop_table(self, any_engine):
        any_engine.create_table("t")
        any_engine.put("t", "k", 1)
        any_engine.drop_table("t")
        assert not any_engine.has_table("t")

    def test_drop_missing_table_is_noop(self, any_engine):
        any_engine.drop_table("nope")

    def test_operations_on_missing_table_raise(self, any_engine):
        with pytest.raises(TableNotFoundError):
            any_engine.put("missing", "k", 1)
        with pytest.raises(TableNotFoundError):
            any_engine.get("missing", "k")
        with pytest.raises(TableNotFoundError):
            list(any_engine.scan("missing"))


class TestRecordAccess:
    def test_put_and_get(self, any_engine):
        any_engine.create_table("t")
        any_engine.put("t", "k", {"a": 1})
        assert any_engine.get("t", "k") == {"a": 1}

    def test_get_default(self, any_engine):
        any_engine.create_table("t")
        assert any_engine.get("t", "missing", default="fallback") == "fallback"

    def test_put_overwrites_and_bumps_version(self, any_engine):
        any_engine.create_table("t")
        first = any_engine.put("t", "k", 1)
        second = any_engine.put("t", "k", 2)
        assert first.version == 1
        assert second.version == 2
        assert any_engine.get("t", "k") == 2

    def test_put_new_rejects_duplicates(self, any_engine):
        any_engine.create_table("t")
        any_engine.put_new("t", "k", 1)
        with pytest.raises(DuplicateKeyError):
            any_engine.put_new("t", "k", 2)

    def test_delete(self, any_engine):
        any_engine.create_table("t")
        any_engine.put("t", "k", 1)
        assert any_engine.delete("t", "k") is True
        assert any_engine.delete("t", "k") is False
        assert any_engine.get("t", "k") is None

    def test_contains(self, any_engine):
        any_engine.create_table("t")
        assert not any_engine.contains("t", "k")
        any_engine.put("t", "k", 1)
        assert any_engine.contains("t", "k")

    def test_scan_preserves_insertion_order(self, any_engine):
        any_engine.create_table("t")
        for index in range(10):
            any_engine.put("t", f"k{index}", index)
        keys = [record.key for record in any_engine.scan("t")]
        assert keys == [f"k{index}" for index in range(10)]

    def test_count(self, any_engine):
        any_engine.create_table("t")
        assert any_engine.count("t") == 0
        any_engine.put("t", "a", 1)
        any_engine.put("t", "b", 2)
        assert any_engine.count("t") == 2

    def test_keys_values_items(self, any_engine):
        any_engine.create_table("t")
        any_engine.put("t", "a", 1)
        any_engine.put("t", "b", 2)
        assert any_engine.keys("t") == ["a", "b"]
        assert any_engine.values("t") == [1, 2]
        assert any_engine.items("t") == [("a", 1), ("b", 2)]

    def test_non_json_value_rejected(self, any_engine):
        any_engine.create_table("t")
        with pytest.raises(StorageError):
            any_engine.put("t", "k", object())

    def test_complex_nested_values_roundtrip(self, any_engine):
        any_engine.create_table("t")
        value = {"list": [1, "two", None], "nested": {"x": [True, False]}}
        any_engine.put("t", "k", value)
        assert any_engine.get("t", "k") == value

    def test_describe(self, any_engine):
        any_engine.create_table("t")
        any_engine.put("t", "k", 1)
        description = any_engine.describe()
        assert description["tables"] == {"t": 1}


class TestOpenEngine:
    def test_open_memory(self):
        engine = open_engine(StorageConfig(engine="memory"))
        assert isinstance(engine, MemoryEngine)

    def test_open_sqlite(self, tmp_path):
        engine = open_engine(StorageConfig(engine="sqlite", path=str(tmp_path / "x.db")))
        assert isinstance(engine, SqliteEngine)
        engine.close()

    def test_open_log(self, tmp_path):
        engine = open_engine(StorageConfig(engine="log", path=str(tmp_path / "x")))
        assert isinstance(engine, LogStructuredEngine)
        engine.close()

    def test_unknown_engine_raises(self):
        with pytest.raises(ConfigurationError):
            open_engine(StorageConfig(engine="postgres"))

    def test_context_manager_closes(self, tmp_path):
        with open_engine(StorageConfig(engine="sqlite", path=str(tmp_path / "cm.db"))) as engine:
            engine.create_table("t")
            engine.put("t", "k", 1)
