"""Unit tests exercising every storage engine through the common interface."""

from __future__ import annotations

import pytest

from repro.config import StorageConfig
from repro.exceptions import (
    ConfigurationError,
    DuplicateKeyError,
    StorageError,
    TableNotFoundError,
)
from repro.storage import (
    ConsistentHashEngine,
    LogStructuredEngine,
    MemoryEngine,
    ShardedEngine,
    SqliteEngine,
    open_engine,
    shard_index,
)
from repro.storage.testing import DURABLE_ENGINE_NAMES, build_engine


class TestTableManagement:
    def test_create_and_list(self, any_engine):
        any_engine.create_table("t1")
        any_engine.create_table("t2")
        assert any_engine.list_tables() == ["t1", "t2"]

    def test_create_is_idempotent(self, any_engine):
        any_engine.create_table("t")
        any_engine.create_table("t")
        assert any_engine.list_tables() == ["t"]

    def test_has_table(self, any_engine):
        assert not any_engine.has_table("t")
        any_engine.create_table("t")
        assert any_engine.has_table("t")

    def test_drop_table(self, any_engine):
        any_engine.create_table("t")
        any_engine.put("t", "k", 1)
        any_engine.drop_table("t")
        assert not any_engine.has_table("t")

    def test_drop_missing_table_is_noop(self, any_engine):
        any_engine.drop_table("nope")

    def test_operations_on_missing_table_raise(self, any_engine):
        with pytest.raises(TableNotFoundError):
            any_engine.put("missing", "k", 1)
        with pytest.raises(TableNotFoundError):
            any_engine.get("missing", "k")
        with pytest.raises(TableNotFoundError):
            list(any_engine.scan("missing"))


class TestRecordAccess:
    def test_put_and_get(self, any_engine):
        any_engine.create_table("t")
        any_engine.put("t", "k", {"a": 1})
        assert any_engine.get("t", "k") == {"a": 1}

    def test_get_default(self, any_engine):
        any_engine.create_table("t")
        assert any_engine.get("t", "missing", default="fallback") == "fallback"

    def test_put_overwrites_and_bumps_version(self, any_engine):
        any_engine.create_table("t")
        first = any_engine.put("t", "k", 1)
        second = any_engine.put("t", "k", 2)
        assert first.version == 1
        assert second.version == 2
        assert any_engine.get("t", "k") == 2

    def test_put_new_rejects_duplicates(self, any_engine):
        any_engine.create_table("t")
        any_engine.put_new("t", "k", 1)
        with pytest.raises(DuplicateKeyError):
            any_engine.put_new("t", "k", 2)

    def test_delete(self, any_engine):
        any_engine.create_table("t")
        any_engine.put("t", "k", 1)
        assert any_engine.delete("t", "k") is True
        assert any_engine.delete("t", "k") is False
        assert any_engine.get("t", "k") is None

    def test_contains(self, any_engine):
        any_engine.create_table("t")
        assert not any_engine.contains("t", "k")
        any_engine.put("t", "k", 1)
        assert any_engine.contains("t", "k")

    def test_scan_preserves_insertion_order(self, any_engine):
        any_engine.create_table("t")
        for index in range(10):
            any_engine.put("t", f"k{index}", index)
        keys = [record.key for record in any_engine.scan("t")]
        assert keys == [f"k{index}" for index in range(10)]

    def test_count(self, any_engine):
        any_engine.create_table("t")
        assert any_engine.count("t") == 0
        any_engine.put("t", "a", 1)
        any_engine.put("t", "b", 2)
        assert any_engine.count("t") == 2

    def test_keys_values_items(self, any_engine):
        any_engine.create_table("t")
        any_engine.put("t", "a", 1)
        any_engine.put("t", "b", 2)
        assert any_engine.keys("t") == ["a", "b"]
        assert any_engine.values("t") == [1, 2]
        assert any_engine.items("t") == [("a", 1), ("b", 2)]

    def test_non_json_value_rejected(self, any_engine):
        any_engine.create_table("t")
        with pytest.raises(StorageError):
            any_engine.put("t", "k", object())

    def test_complex_nested_values_roundtrip(self, any_engine):
        any_engine.create_table("t")
        value = {"list": [1, "two", None], "nested": {"x": [True, False]}}
        any_engine.put("t", "k", value)
        assert any_engine.get("t", "k") == value

    def test_describe(self, any_engine):
        any_engine.create_table("t")
        any_engine.put("t", "k", 1)
        description = any_engine.describe()
        assert description["tables"] == {"t": 1}


class TestBulkOperations:
    def test_put_many_inserts_and_returns_records(self, any_engine):
        any_engine.create_table("t")
        records = any_engine.put_many("t", [("a", 1), ("b", 2), ("c", 3)])
        assert [(r.key, r.value, r.version) for r in records] == [
            ("a", 1, 1), ("b", 2, 1), ("c", 3, 1)
        ]
        assert any_engine.items("t") == [("a", 1), ("b", 2), ("c", 3)]

    def test_put_many_upserts_and_bumps_versions(self, any_engine):
        any_engine.create_table("t")
        any_engine.put("t", "a", "old")
        records = any_engine.put_many("t", [("a", "new"), ("b", 1)])
        assert records[0].version == 2
        assert any_engine.get("t", "a") == "new"
        # The upsert keeps the original insertion position, like single put.
        assert any_engine.keys("t") == ["a", "b"]

    def test_put_many_repeated_key_bumps_per_occurrence(self, any_engine):
        any_engine.create_table("t")
        records = any_engine.put_many("t", [("a", 1), ("a", 2), ("a", 3)])
        assert [r.version for r in records] == [1, 2, 3]
        assert any_engine.get_record("t", "a").version == 3
        assert any_engine.get("t", "a") == 3

    def test_put_many_if_absent_skips_existing_keys(self, any_engine):
        any_engine.create_table("t")
        any_engine.put("t", "a", "kept")
        records = any_engine.put_many(
            "t", [("a", "ignored"), ("b", 1), ("b", 2)], if_absent=True
        )
        assert [(r.key, r.value, r.version) for r in records] == [
            ("a", "kept", 1), ("b", 1, 1), ("b", 1, 1)
        ]
        assert any_engine.get("t", "a") == "kept"
        assert any_engine.get("t", "b") == 1
        assert any_engine.get_record("t", "b").version == 1

    def test_put_many_empty_batch(self, any_engine):
        any_engine.create_table("t")
        assert any_engine.put_many("t", []) == []
        with pytest.raises(TableNotFoundError):
            any_engine.put_many("missing", [])

    def test_put_many_rejects_unencodable_values_without_partial_write(self, any_engine):
        any_engine.create_table("t")
        with pytest.raises(StorageError):
            any_engine.put_many("t", [("a", 1), ("b", object())])
        # All-or-nothing: the valid prefix must not have been applied.
        assert any_engine.items("t") == []

    def test_get_many_preserves_order_and_defaults(self, any_engine):
        any_engine.create_table("t")
        any_engine.put_many("t", [("a", 1), ("b", None)])
        assert any_engine.get_many("t", ["b", "missing", "a", "a"]) == [None, None, 1, 1]
        assert any_engine.get_many("t", ["missing"], default="x") == ["x"]
        with pytest.raises(TableNotFoundError):
            any_engine.get_many("missing", ["a"])

    def test_scan_limit_pages_in_insertion_order(self, any_engine):
        any_engine.create_table("t")
        any_engine.put_many("t", [(f"k{i}", i) for i in range(7)])
        first = list(any_engine.scan("t", limit=3))
        assert [r.key for r in first] == ["k0", "k1", "k2"]
        second = list(any_engine.scan("t", limit=3, start_after=first[-1].key))
        assert [r.key for r in second] == ["k3", "k4", "k5"]
        tail = list(any_engine.scan("t", limit=3, start_after=second[-1].key))
        assert [r.key for r in tail] == ["k6"]

    def test_scan_keys_pages_without_values(self, any_engine):
        any_engine.create_table("t")
        any_engine.put_many("t", [(f"k{i}", {"payload": i}) for i in range(5)])
        assert any_engine.scan_keys("t") == [f"k{i}" for i in range(5)]
        assert any_engine.scan_keys("t", limit=2, start_after="k1") == ["k2", "k3"]
        with pytest.raises(StorageError):
            any_engine.scan_keys("t", start_after="missing")

    def test_scan_zero_limit_and_unknown_cursor(self, any_engine):
        any_engine.create_table("t")
        any_engine.put("t", "a", 1)
        assert list(any_engine.scan("t", limit=0)) == []
        with pytest.raises(ValueError):
            list(any_engine.scan("t", limit=-1))
        with pytest.raises(StorageError):
            list(any_engine.scan("t", start_after="missing"))

    def test_put_many_is_durable(self, tmp_path):
        # Every durable registry engine must reopen a batch it wrote; the
        # list comes from the shared registry so a new engine cannot dodge
        # this check.
        for name in DURABLE_ENGINE_NAMES:
            engine = build_engine(name, tmp_path / name)
            engine.create_table("t")
            engine.put_many("t", [(f"k{i}", i) for i in range(5)])
            engine.close()
            reopened = build_engine(name, tmp_path / name)
            assert reopened.items("t") == [(f"k{i}", i) for i in range(5)], name
            reopened.close()

    def test_log_engine_batch_is_one_append(self, tmp_path):
        engine = LogStructuredEngine(str(tmp_path / "grouped"), snapshot_every=100)
        engine.create_table("t")
        engine.put_many("t", [(f"k{i}", i) for i in range(50)])
        engine.flush()
        with open(engine.log_path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        # create_table + one group record for the whole 50-item batch.
        assert len(lines) == 2
        engine.close()


class TestScanPaginationContract:
    """The ``(limit, start_after)`` edge cases, identical on every engine."""

    def test_empty_table_scans_empty(self, any_engine):
        any_engine.create_table("t")
        assert list(any_engine.scan("t")) == []
        assert list(any_engine.scan("t", limit=0)) == []
        assert list(any_engine.scan("t", limit=5)) == []
        assert any_engine.scan_keys("t") == []
        assert any_engine.scan_keys("t", limit=3) == []

    def test_cursor_at_last_record_yields_empty_page(self, any_engine):
        any_engine.create_table("t")
        any_engine.put_many("t", [("a", 1), ("b", 2), ("c", 3)])
        assert list(any_engine.scan("t", start_after="c")) == []
        assert list(any_engine.scan("t", limit=4, start_after="c")) == []
        assert any_engine.scan_keys("t", start_after="c") == []

    def test_limit_zero_with_and_without_cursor(self, any_engine):
        any_engine.create_table("t")
        any_engine.put_many("t", [("a", 1), ("b", 2)])
        assert list(any_engine.scan("t", limit=0)) == []
        assert list(any_engine.scan("t", limit=0, start_after="a")) == []
        assert any_engine.scan_keys("t", limit=0) == []

    def test_limit_past_end_truncates_cleanly(self, any_engine):
        any_engine.create_table("t")
        any_engine.put_many("t", [("a", 1), ("b", 2), ("c", 3)])
        assert [r.key for r in any_engine.scan("t", limit=99)] == ["a", "b", "c"]
        assert [r.key for r in any_engine.scan("t", limit=99, start_after="b")] == ["c"]

    def test_deleted_key_is_not_a_valid_cursor(self, any_engine):
        any_engine.create_table("t")
        any_engine.put_many("t", [("a", 1), ("b", 2)])
        any_engine.delete("t", "a")
        with pytest.raises(StorageError):
            list(any_engine.scan("t", start_after="a"))

    def test_page_walk_concatenates_to_full_scan(self, any_engine):
        any_engine.create_table("t")
        any_engine.put_many("t", [(f"k{i}", i) for i in range(11)])
        for page_size in (1, 2, 3, 5, 11, 20):
            walked, cursor = [], None
            while True:
                page = list(any_engine.scan("t", limit=page_size, start_after=cursor))
                walked.extend(r.key for r in page)
                if len(page) < page_size:
                    break
                cursor = page[-1].key
            assert walked == [f"k{i}" for i in range(11)], page_size


class TestShardedEngine:
    """Behaviour specific to the sharded engine: routing, recovery, merging."""

    def build(self, tmp_path, num_shards=4):
        return ShardedEngine(
            [SqliteEngine(str(tmp_path / f"s{i}.db")) for i in range(num_shards)]
        )

    def test_keys_spread_across_shards(self, tmp_path):
        engine = self.build(tmp_path)
        engine.create_table("t")
        engine.put_many("t", [(f"k{i}", i) for i in range(64)])
        populated = [shard for shard in engine.shards if shard.count("t") > 0]
        assert len(populated) == 4
        assert sum(shard.count("t") for shard in engine.shards) == 64
        engine.close()

    def test_routing_is_stable_across_reopen(self, tmp_path):
        keys = [f"key-{i}" for i in range(50)]
        before = [shard_index(key, 4) for key in keys]
        engine = self.build(tmp_path)
        engine.create_table("t")
        engine.put_many("t", list(zip(keys, range(50))))
        engine.close()

        reopened = self.build(tmp_path)
        assert [shard_index(key, 4) for key in keys] == before
        assert reopened.get_many("t", keys) == list(range(50))
        assert [r.key for r in reopened.scan("t")] == keys
        reopened.close()

    def test_insertion_order_survives_reopen_and_new_writes(self, tmp_path):
        engine = self.build(tmp_path)
        engine.create_table("t")
        engine.put_many("t", [("a", 1), ("b", 2), ("c", 3)])
        engine.close()
        # The sequence counter is recovered from the shards, so records
        # written after the reopen must land after every surviving record.
        reopened = self.build(tmp_path)
        reopened.put("t", "d", 4)
        reopened.put_many("t", [("e", 5), ("a", 10)])
        assert [r.key for r in reopened.scan("t")] == ["a", "b", "c", "d", "e"]
        assert reopened.get("t", "a") == 10
        reopened.close()

    def test_merge_scan_paginates_inside_shards(self, tmp_path):
        engine = self.build(tmp_path, num_shards=3)
        engine._merge_page_size = 4
        engine.create_table("t")
        engine.put_many("t", [(f"k{i:03d}", i) for i in range(30)])
        assert [r.key for r in engine.scan("t")] == [f"k{i:03d}" for i in range(30)]
        page = list(engine.scan("t", limit=7, start_after="k009"))
        assert [r.key for r in page] == [f"k{i:03d}" for i in range(10, 17)]
        engine.close()

    def test_describe_reports_shards(self, tmp_path):
        engine = self.build(tmp_path, num_shards=2)
        engine.create_table("t")
        engine.put("t", "k", 1)
        description = engine.describe()
        assert description["engine"] == "sharded"
        assert description["tables"] == {"t": 1}
        assert len(description["shards"]) == 2
        assert sum(entry["records"] for entry in description["shards"]) == 1
        engine.close()

    def test_requires_at_least_one_shard(self):
        with pytest.raises(ValueError):
            ShardedEngine([])

    def test_parallel_put_many_matches_serial(self, tmp_path):
        """shard_workers only changes scheduling: contents, per-item records
        and scan order are identical to the serial fan-out."""
        serial = self.build(tmp_path / "serial")
        parallel = ShardedEngine(
            [SqliteEngine(str(tmp_path / "parallel" / f"s{i}.db")) for i in range(4)],
            shard_workers=4,
        )
        items = [(f"k{i:03d}", {"value": i}) for i in range(100)]
        for engine in (serial, parallel):
            engine.create_table("t")
        serial_records = serial.put_many("t", items)
        parallel_records = parallel.put_many("t", items)
        assert parallel_records == serial_records
        assert [r.key for r in parallel.scan("t")] == [r.key for r in serial.scan("t")]
        # if_absent reruns heal identically too.
        replay = parallel.put_many("t", items, if_absent=True)
        assert [r.version for r in replay] == [1] * len(items)
        assert parallel.describe()["shard_workers"] == 4
        serial.close()
        parallel.close()

    def test_parallel_put_many_via_config(self, tmp_path):
        engine = open_engine(
            StorageConfig(
                engine="sharded",
                path=str(tmp_path / "cfg"),
                shards=3,
                shard_workers=3,
            )
        )
        engine.create_table("t")
        engine.put_many("t", [(f"k{i}", i) for i in range(20)])
        assert engine.shard_workers == 3
        assert engine.count("t") == 20
        assert [r.key for r in engine.scan("t")] == [f"k{i}" for i in range(20)]
        engine.close()


class TestOpenEngine:
    def test_open_memory(self):
        engine = open_engine(StorageConfig(engine="memory"))
        assert isinstance(engine, MemoryEngine)

    def test_open_sqlite(self, tmp_path):
        engine = open_engine(StorageConfig(engine="sqlite", path=str(tmp_path / "x.db")))
        assert isinstance(engine, SqliteEngine)
        engine.close()

    def test_open_log(self, tmp_path):
        engine = open_engine(StorageConfig(engine="log", path=str(tmp_path / "x")))
        assert isinstance(engine, LogStructuredEngine)
        engine.close()

    def test_open_sharded(self, tmp_path):
        config = StorageConfig(engine="sharded", path=str(tmp_path / "shards"), shards=4)
        engine = open_engine(config)
        assert isinstance(engine, ShardedEngine)
        assert len(engine.shards) == 4
        assert all(isinstance(shard, SqliteEngine) for shard in engine.shards)
        engine.create_table("t")
        engine.put("t", "k", 1)
        engine.close()
        reopened = open_engine(config)
        assert reopened.get("t", "k") == 1
        reopened.close()

    def test_open_sharded_memory_children(self, tmp_path):
        engine = open_engine(
            StorageConfig(engine="sharded", path=str(tmp_path), shards=2, shard_engine="memory")
        )
        assert all(isinstance(shard, MemoryEngine) for shard in engine.shards)
        engine.close()

    def test_open_sharded_rejects_bad_configs(self, tmp_path):
        with pytest.raises(ConfigurationError):
            open_engine(StorageConfig(engine="sharded", path=str(tmp_path), shards=0))
        with pytest.raises(ConfigurationError):
            open_engine(
                StorageConfig(engine="sharded", path=str(tmp_path), shard_engine="postgres")
            )

    def test_open_ring(self, tmp_path):
        config = StorageConfig(
            engine="ring", path=str(tmp_path / "ring"), shards=3, virtual_nodes=16
        )
        engine = open_engine(config)
        assert isinstance(engine, ConsistentHashEngine)
        assert engine.member_names == ["ring-00", "ring-01", "ring-02"]
        assert engine.virtual_nodes == 16
        engine.create_table("t")
        engine.put("t", "k", 1)
        engine.close()
        reopened = open_engine(config)
        assert reopened.get("t", "k") == 1
        reopened.close()

    def test_open_ring_rediscovers_rebalanced_membership(self, tmp_path):
        """A rebalance grows the directory; reopening with the *original*
        config must route over the grown membership, not config.shards."""
        config = StorageConfig(
            engine="ring", path=str(tmp_path / "ring"), shards=2, virtual_nodes=16
        )
        engine = open_engine(config)
        engine.create_table("t")
        engine.put_many("t", [(f"k{i}", i) for i in range(40)])
        engine.rebalance(
            add={"ring-02": SqliteEngine(str(tmp_path / "ring" / "ring-02.db"))}
        )
        assert engine.member_names == ["ring-00", "ring-01", "ring-02"]
        engine.close()

        reopened = open_engine(config)  # still says shards=2
        assert reopened.member_names == ["ring-00", "ring-01", "ring-02"]
        assert reopened.items("t") == [(f"k{i}", i) for i in range(40)]
        reopened.close()

    def test_open_ring_memory_children(self, tmp_path):
        engine = open_engine(
            StorageConfig(engine="ring", path=str(tmp_path), shards=2, shard_engine="memory")
        )
        assert isinstance(engine, ConsistentHashEngine)
        assert engine.member_names == ["ring-00", "ring-01"]
        engine.close()

    def test_open_ring_rejects_bad_configs(self, tmp_path):
        with pytest.raises(ConfigurationError):
            open_engine(StorageConfig(engine="ring", path=str(tmp_path), shards=0))
        with pytest.raises(ConfigurationError):
            open_engine(
                StorageConfig(engine="ring", path=str(tmp_path), shard_engine="postgres")
            )

    def test_unknown_engine_raises(self):
        with pytest.raises(ConfigurationError):
            open_engine(StorageConfig(engine="postgres"))

    def test_context_manager_closes(self, tmp_path):
        with open_engine(StorageConfig(engine="sqlite", path=str(tmp_path / "cm.db"))) as engine:
            engine.create_table("t")
            engine.put("t", "k", 1)
