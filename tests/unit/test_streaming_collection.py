"""Streaming results pipeline: paged collection equals batched collection.

Three layers of proof:

* platform level — ``iter_task_runs_for_project`` / ``list_project_task_ids``
  page through a project with the storage-style exclusive cursor and
  reassemble to exactly ``get_task_runs_for_project``, with round-trip
  counts of ``ceil(tasks / page_size)`` (via :class:`CountingTransport`);
* CrowdData level — a project with more rows than ``collect_page_size``
  collects the identical result column through the streaming path and the
  one-page path, and cache flushes stay bounded by the page size;
* fault-recovery level — a crash injected mid-stream (inside a paged cache
  flush) reruns to the identical final state with zero re-collected answers
  and no overwritten cache records.
"""

from __future__ import annotations

import math

import pytest

from repro import CrowdContext
from repro.config import PlatformConfig, WorkerPoolConfig
from repro.exceptions import CrashInjected, PlatformError
from repro.platform.client import PlatformClient
from repro.platform.server import PlatformServer
from repro.platform.transport import CountingTransport
from repro.presenters import ImageLabelPresenter
from repro.platform.store import DurableTaskStore
from repro.simulation import CrashPlan, CrashingEngine
from repro.storage import MemoryEngine, SqliteEngine
from repro.workers.pool import WorkerPool

NUM_OBJECTS = 23
PAGE_SIZE = 5
REDUNDANCY = 2


def make_client(transport=None, seed=13, store=None):
    pool = WorkerPool.from_config(WorkerPoolConfig(size=20, mean_accuracy=0.9, seed=seed))
    server = PlatformServer(worker_pool=pool, config=PlatformConfig(seed=seed), store=store)
    return PlatformClient(server, transport=transport)


@pytest.fixture(params=["memory", "durable"])
def populated_project(request):
    """Platform paging runs against both task stores: the cursor contract
    must hold whether the server's state is in dicts or on an engine."""
    transport = CountingTransport()
    store = None
    if request.param == "durable":
        store = DurableTaskStore(MemoryEngine(), owns_engine=True)
    client = make_client(transport, store=store)
    project = client.create_project("streaming")
    specs = [
        {"info": {"url": f"img-{i:03d}", "_true_answer": "Yes"}, "n_assignments": REDUNDANCY}
        for i in range(NUM_OBJECTS)
    ]
    client.create_tasks(project.project_id, specs)
    client.simulate_work(project_id=project.project_id)
    return client, project, transport


class TestPlatformPaging:
    def test_stream_reassembles_to_batched_map(self, populated_project):
        client, project, _ = populated_project
        batched = client.get_task_runs_for_project(project.project_id)
        streamed = dict(client.iter_task_runs_for_project(project.project_id, PAGE_SIZE))
        assert streamed == batched
        assert list(streamed) == list(batched)  # same publication order
        # The server-side generator yields the identical stream.
        server_streamed = dict(
            client.server.iter_task_runs_for_project(project.project_id, PAGE_SIZE)
        )
        assert server_streamed == batched

    def test_paging_survives_task_deletion(self, populated_project):
        client, project, _ = populated_project
        ids = list(client.iter_project_task_ids(project.project_id, PAGE_SIZE))
        client.delete_task(ids[3])
        survivors = list(client.iter_project_task_ids(project.project_id, PAGE_SIZE))
        assert survivors == ids[:3] + ids[4:]
        # A deleted task id is no longer a valid cursor.
        with pytest.raises(PlatformError):
            client.get_task_runs_page(project.project_id, PAGE_SIZE, start_after=ids[3])

    def test_round_trips_are_one_per_page(self, populated_project):
        client, project, transport = populated_project
        transport.calls_by_name.clear()
        pages = []
        for _ in client.iter_task_runs_for_project(project.project_id, PAGE_SIZE):
            pages.append(_)
        assert transport.calls_by_name["get_task_runs_page"] == math.ceil(
            NUM_OBJECTS / PAGE_SIZE
        )

    def test_every_page_is_bounded_by_page_size(self, populated_project):
        client, project, _ = populated_project
        cursor, sizes = None, []
        while True:
            page = client.get_task_runs_page(project.project_id, PAGE_SIZE, start_after=cursor)
            sizes.append(len(page))
            if len(page) < PAGE_SIZE:
                break
            cursor = page[-1][0]
        assert max(sizes) <= PAGE_SIZE
        assert sum(sizes) == NUM_OBJECTS

    def test_task_id_stream_matches_task_list(self, populated_project):
        client, project, _ = populated_project
        ids = list(client.iter_project_task_ids(project.project_id, PAGE_SIZE))
        assert ids == [task.task_id for task in client.list_tasks(project.project_id)]

    def test_bad_cursor_and_bad_limit_raise(self, populated_project):
        client, project, _ = populated_project
        with pytest.raises(PlatformError):
            client.get_task_runs_page(project.project_id, PAGE_SIZE, start_after=99999)
        with pytest.raises(PlatformError):
            client.list_project_task_ids(project.project_id, 0)


def run_experiment(engine, client, page_size, table="stream_tbl"):
    context = CrowdContext(engine=engine, client=client, ground_truth=lambda obj: "Yes")
    data = context.CrowdData(
        [f"img-{i:03d}.png" for i in range(NUM_OBJECTS)], table
    )
    data.collect_page_size = page_size
    data.set_presenter(ImageLabelPresenter())
    data.publish_task(n_assignments=REDUNDANCY)
    data.get_result()
    return data


class TestStreamingCrowdDataCollection:
    def test_paged_and_single_page_paths_collect_identical_results(self, tmp_path):
        streamed = run_experiment(
            SqliteEngine(str(tmp_path / "paged.db")), make_client(), page_size=PAGE_SIZE
        )
        batched = run_experiment(
            SqliteEngine(str(tmp_path / "one_page.db")),
            make_client(),
            page_size=10 * NUM_OBJECTS,
        )
        assert streamed.column("result") == batched.column("result")
        assert all(result["complete"] for result in streamed.column("result"))

    def test_collection_round_trips_scale_with_pages_not_rows(self, tmp_path):
        transport = CountingTransport()
        run_experiment(
            SqliteEngine(str(tmp_path / "counted.db")),
            make_client(transport),
            page_size=PAGE_SIZE,
        )
        pages = math.ceil(NUM_OBJECTS / PAGE_SIZE)
        assert transport.calls_by_name["get_task_runs_page"] <= pages
        assert transport.calls_by_name["list_project_task_ids"] == pages
        # The seed behaviour this replaced: one get_task_runs call per row.
        assert "get_task_runs" not in transport.calls_by_name
        assert "get_task_runs_for_project" not in transport.calls_by_name

    def test_cache_flushes_are_bounded_by_page_size(self, tmp_path):
        durable = SqliteEngine(str(tmp_path / "bounded.db"))

        batch_sizes = []
        original = SqliteEngine.put_many

        def spying_put_many(self, table_name, items, if_absent=False):
            items = list(items)
            if table_name.endswith("::results"):
                batch_sizes.append(len(items))
            return original(self, table_name, items, if_absent=if_absent)

        SqliteEngine.put_many = spying_put_many
        try:
            run_experiment(durable, make_client(), page_size=PAGE_SIZE)
        finally:
            SqliteEngine.put_many = original
        assert batch_sizes, "streaming collection never flushed the cache"
        assert max(batch_sizes) <= PAGE_SIZE
        assert sum(batch_sizes) == NUM_OBJECTS
        durable.close()


class TestCrashMidStream:
    @pytest.mark.parametrize("crash_offset", [2, 9, 18])
    def test_rerun_after_mid_stream_crash_is_exactly_once(self, tmp_path, crash_offset):
        client = make_client()
        durable = SqliteEngine(str(tmp_path / "crash_stream.db"))
        # Publish writes: __tables__ + init log + presenter meta + log +
        # project meta + 23 task descriptors + publish log = 28; the paged
        # result flushes span the following NUM_OBJECTS writes.
        crash_after = 28 + crash_offset
        with pytest.raises(CrashInjected):
            run_experiment(
                CrashingEngine(durable, CrashPlan(crash_after_writes=crash_after)),
                client,
                page_size=PAGE_SIZE,
            )
        runs_after_crash = client.statistics()["task_runs"]
        assert runs_after_crash == NUM_OBJECTS * REDUNDANCY
        cached = durable.count("stream_tbl::results")
        assert 0 < cached < NUM_OBJECTS

        data = run_experiment(durable, client, page_size=PAGE_SIZE)
        stats = client.statistics()
        assert stats["task_runs"] == runs_after_crash  # zero re-collected answers
        assert stats["tasks"] == NUM_OBJECTS  # zero duplicate publishes
        assert all(result["complete"] for result in data.column("result"))
        # The surviving page-prefix was never overwritten or version-bumped.
        assert [r.version for r in durable.scan("stream_tbl::results")] == [1] * NUM_OBJECTS
        durable.close()
