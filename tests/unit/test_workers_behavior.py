"""Unit tests for worker behaviour models."""

from __future__ import annotations

import random

import pytest

from repro.workers.behavior import (
    AdversarialWorker,
    ConfusionMatrixWorker,
    NoisyWorker,
    ReliableWorker,
    SpammerWorker,
)

CANDIDATES = ["Yes", "No"]


def answer_many(behavior, true_answer, n=2000, seed=1, candidates=CANDIDATES):
    rng = random.Random(seed)
    return [behavior.answer(candidates, true_answer, rng) for _ in range(n)]


class TestReliableWorker:
    def test_always_correct(self):
        answers = answer_many(ReliableWorker(), "Yes", n=100)
        assert all(answer == "Yes" for answer in answers)

    def test_without_truth_picks_a_candidate(self):
        answers = answer_many(ReliableWorker(), None, n=50)
        assert set(answers) <= set(CANDIDATES)

    def test_expected_accuracy(self):
        assert ReliableWorker().expected_accuracy(2) == 1.0

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            ReliableWorker().answer([], "Yes", random.Random(0))


class TestNoisyWorker:
    def test_accuracy_near_nominal(self):
        answers = answer_many(NoisyWorker(accuracy=0.8), "Yes")
        observed = sum(answer == "Yes" for answer in answers) / len(answers)
        assert observed == pytest.approx(0.8, abs=0.04)

    def test_zero_accuracy_always_wrong(self):
        answers = answer_many(NoisyWorker(accuracy=0.0), "Yes", n=200)
        assert all(answer == "No" for answer in answers)

    def test_perfect_accuracy_always_right(self):
        answers = answer_many(NoisyWorker(accuracy=1.0), "No", n=200)
        assert all(answer == "No" for answer in answers)

    def test_invalid_accuracy_rejected(self):
        with pytest.raises(ValueError):
            NoisyWorker(accuracy=1.5)

    def test_single_candidate_returns_it(self):
        answers = answer_many(NoisyWorker(accuracy=0.5), "Only", n=50, candidates=["Only"])
        assert all(answer == "Only" for answer in answers)

    def test_multiclass_errors_spread_over_wrong_labels(self):
        candidates = ["a", "b", "c", "d"]
        answers = answer_many(NoisyWorker(accuracy=0.5), "a", candidates=candidates)
        wrong = [answer for answer in answers if answer != "a"]
        assert set(wrong) == {"b", "c", "d"}

    def test_expected_accuracy(self):
        assert NoisyWorker(accuracy=0.73).expected_accuracy(2) == 0.73


class TestSpammerWorker:
    def test_roughly_uniform(self):
        answers = answer_many(SpammerWorker(), "Yes")
        observed = sum(answer == "Yes" for answer in answers) / len(answers)
        assert observed == pytest.approx(0.5, abs=0.05)

    def test_expected_accuracy_is_chance(self):
        assert SpammerWorker().expected_accuracy(4) == 0.25

    def test_expected_accuracy_invalid_candidates(self):
        with pytest.raises(ValueError):
            SpammerWorker().expected_accuracy(0)


class TestAdversarialWorker:
    def test_always_wrong(self):
        answers = answer_many(AdversarialWorker(), "Yes", n=200)
        assert all(answer == "No" for answer in answers)

    def test_expected_accuracy_zero(self):
        assert AdversarialWorker().expected_accuracy(2) == 0.0

    def test_single_candidate_forced_correct(self):
        answers = answer_many(AdversarialWorker(), "Only", n=20, candidates=["Only"])
        assert all(answer == "Only" for answer in answers)


class TestConfusionMatrixWorker:
    def test_follows_confusion_rows(self):
        worker = ConfusionMatrixWorker(
            {
                "Yes": {"Yes": 0.9, "No": 0.1},
                "No": {"Yes": 0.3, "No": 0.7},
            }
        )
        yes_answers = answer_many(worker, "Yes")
        observed = sum(answer == "Yes" for answer in yes_answers) / len(yes_answers)
        assert observed == pytest.approx(0.9, abs=0.03)

    def test_rows_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ConfusionMatrixWorker({"Yes": {"Yes": 0.5, "No": 0.1}})

    def test_unknown_truth_falls_back_to_uniform(self):
        worker = ConfusionMatrixWorker({"Yes": {"Yes": 1.0}})
        answers = answer_many(worker, "Maybe", n=100)
        assert set(answers) <= set(CANDIDATES)

    def test_expected_accuracy_is_mean_diagonal(self):
        worker = ConfusionMatrixWorker(
            {
                "Yes": {"Yes": 0.8, "No": 0.2},
                "No": {"Yes": 0.4, "No": 0.6},
            }
        )
        assert worker.expected_accuracy(2) == pytest.approx(0.7)
