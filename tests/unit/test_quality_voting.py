"""Unit tests for majority vote, weighted vote, and the aggregator registry."""

from __future__ import annotations

import pytest

from repro.exceptions import InsufficientAnswersError, QualityControlError
from repro.quality import (
    MajorityVoteAggregator,
    WeightedVoteAggregator,
    get_aggregator,
    majority_vote,
    weighted_vote,
)
from repro.quality.aggregation import known_aggregators


class TestMajorityVote:
    def test_simple_majority(self):
        votes = {"img1": [("w1", "Yes"), ("w2", "Yes"), ("w3", "No")]}
        assert majority_vote(votes) == {"img1": "Yes"}

    def test_confidence_is_vote_share(self):
        votes = {"img1": [("w1", "Yes"), ("w2", "Yes"), ("w3", "No")]}
        result = MajorityVoteAggregator().aggregate(votes)
        assert result.confidences["img1"] == pytest.approx(2 / 3)

    def test_unanimous(self):
        votes = {"x": [("w1", "A"), ("w2", "A")]}
        result = MajorityVoteAggregator().aggregate(votes)
        assert result.decisions["x"] == "A"
        assert result.confidences["x"] == 1.0

    def test_lexicographic_tie_break_is_deterministic(self):
        votes = {"x": [("w1", "B"), ("w2", "A")]}
        assert majority_vote(votes)["x"] == "A"

    def test_first_tie_break_uses_submission_order(self):
        votes = {"x": [("w1", "B"), ("w2", "A")]}
        assert majority_vote(votes, tie_break="first")["x"] == "B"

    def test_invalid_tie_break(self):
        with pytest.raises(ValueError):
            MajorityVoteAggregator(tie_break="coin_flip")

    def test_multiple_items(self):
        votes = {
            1: [("w1", "Yes"), ("w2", "No"), ("w3", "No")],
            2: [("w1", "Yes"), ("w2", "Yes"), ("w3", "Yes")],
        }
        decisions = majority_vote(votes)
        assert decisions == {1: "No", 2: "Yes"}

    def test_empty_problem_rejected(self):
        with pytest.raises(InsufficientAnswersError):
            MajorityVoteAggregator().aggregate({})

    def test_item_with_no_answers_rejected(self):
        with pytest.raises(InsufficientAnswersError):
            MajorityVoteAggregator().aggregate({"x": []})

    def test_accuracy_against(self):
        votes = {
            1: [("w1", "Yes"), ("w2", "Yes")],
            2: [("w1", "No"), ("w2", "No")],
        }
        result = MajorityVoteAggregator().aggregate(votes)
        assert result.accuracy_against({1: "Yes", 2: "Yes"}) == 0.5

    def test_accuracy_against_no_overlap_raises(self):
        result = MajorityVoteAggregator().aggregate({1: [("w", "Yes")]})
        with pytest.raises(QualityControlError):
            result.accuracy_against({99: "Yes"})

    def test_decision_accessor(self):
        result = MajorityVoteAggregator().aggregate({1: [("w", "Yes")]})
        assert result.decision(1) == "Yes"
        with pytest.raises(QualityControlError):
            result.decision(2)


class TestWeightedVote:
    def test_reliable_workers_outvote_unreliable_majority(self):
        # Two unreliable workers say No, one highly reliable worker says Yes.
        votes = {"x": [("good", "Yes"), ("bad1", "No"), ("bad2", "No")]}
        accuracy = {"good": 0.99, "bad1": 0.55, "bad2": 0.55}
        assert weighted_vote(votes, worker_accuracy=accuracy)["x"] == "Yes"

    def test_equal_weights_reduce_to_majority(self):
        votes = {"x": [("w1", "Yes"), ("w2", "Yes"), ("w3", "No")]}
        assert weighted_vote(votes)["x"] == "Yes"

    def test_unknown_workers_use_default_accuracy(self):
        votes = {"x": [("unknown1", "A"), ("unknown2", "B"), ("unknown3", "B")]}
        assert weighted_vote(votes, worker_accuracy={})["x"] == "B"

    def test_confidence_between_zero_and_one(self):
        votes = {"x": [("w1", "Yes"), ("w2", "No")]}
        result = WeightedVoteAggregator().aggregate(votes)
        assert 0.0 <= result.confidences["x"] <= 1.0

    def test_worker_quality_reported(self):
        votes = {"x": [("w1", "Yes")]}
        result = WeightedVoteAggregator(worker_accuracy={"w1": 0.8}).aggregate(votes)
        assert result.worker_quality == {"w1": 0.8}

    def test_invalid_default_accuracy(self):
        with pytest.raises(ValueError):
            WeightedVoteAggregator(default_accuracy=1.0)

    def test_extreme_accuracies_do_not_blow_up(self):
        votes = {"x": [("perfect", "Yes"), ("terrible", "No")]}
        accuracy = {"perfect": 1.0, "terrible": 0.0}
        assert weighted_vote(votes, worker_accuracy=accuracy)["x"] == "Yes"


class TestRegistry:
    def test_known_aggregators(self):
        names = known_aggregators()
        for name in ("mv", "wmv", "em", "glad"):
            assert name in names

    def test_get_aggregator_with_kwargs(self):
        aggregator = get_aggregator("mv", tie_break="first")
        assert isinstance(aggregator, MajorityVoteAggregator)
        assert aggregator.tie_break == "first"

    def test_unknown_aggregator(self):
        with pytest.raises(QualityControlError):
            get_aggregator("blockchain")
