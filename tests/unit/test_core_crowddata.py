"""Unit tests for the CrowdData abstraction — the five steps of Figure 2."""

from __future__ import annotations

import pytest

from repro.exceptions import CrowdDataError, LineageError
from repro.presenters import ImageLabelPresenter, TextLabelPresenter


def build_crowddata(context, dataset, table="imgs", n_assignments=3, publish=True):
    """Run Bob's steps 1-4 against *context* and return the CrowdData."""
    data = context.CrowdData(dataset.images, table, ground_truth=dataset.ground_truth)
    data.set_presenter(ImageLabelPresenter(question="Label?"))
    if publish:
        data.publish_task(n_assignments=n_assignments).get_result()
    return data


class TestTableBasics:
    def test_init_creates_id_and_object_columns(self, context, image_dataset):
        data = context.CrowdData(image_dataset.images, "imgs")
        assert data.columns == ["id", "object", "task", "result"]
        assert data.column("id") == list(range(1, len(image_dataset) + 1))
        assert data.column("object") == image_dataset.images
        assert len(data) == len(image_dataset)

    def test_rows_and_row_access(self, context, image_dataset):
        data = context.CrowdData(image_dataset.images, "imgs")
        rows = data.rows()
        assert rows[0]["id"] == 1
        assert data.row(0) == rows[0]
        with pytest.raises(CrowdDataError):
            data.row(999)

    def test_unknown_column_raises(self, context, image_dataset):
        data = context.CrowdData(image_dataset.images, "imgs")
        with pytest.raises(CrowdDataError):
            data.column("nope")

    def test_empty_table_name_rejected(self, context):
        with pytest.raises(CrowdDataError):
            context.CrowdData(["x"], "")

    def test_repr_mentions_table_and_rows(self, context, image_dataset):
        data = context.CrowdData(image_dataset.images, "imgs")
        assert "imgs" in repr(data)


class TestPresenterStep:
    def test_set_presenter_records_manipulation(self, context, image_dataset):
        data = context.CrowdData(image_dataset.images, "imgs")
        data.set_presenter(ImageLabelPresenter())
        assert data.manipulation_history()[-1].operation == "set_presenter"

    def test_publish_without_presenter_rejected(self, context, image_dataset):
        data = context.CrowdData(image_dataset.images, "imgs")
        with pytest.raises(CrowdDataError, match="presenter"):
            data.publish_task()

    def test_presenter_restored_from_cache(self, sqlite_context, image_dataset):
        data = sqlite_context.CrowdData(image_dataset.images, "imgs")
        data.set_presenter(ImageLabelPresenter(question="Custom question?"))
        # A second CrowdData over the same table (same DB) sees the presenter.
        again = sqlite_context.CrowdData(image_dataset.images, "imgs")
        assert again.presenter is not None
        assert again.presenter.question == "Custom question?"


class TestPublishAndCollect:
    def test_publish_adds_task_descriptors(self, context, image_dataset):
        data = build_crowddata(context, image_dataset, publish=False)
        data.publish_task(n_assignments=3)
        tasks = data.column("task")
        assert all(task is not None for task in tasks)
        assert all(task["n_assignments"] == 3 for task in tasks)
        assert len({task["task_id"] for task in tasks}) == len(image_dataset)

    def test_publish_is_idempotent(self, context, image_dataset):
        data = build_crowddata(context, image_dataset, publish=False)
        data.publish_task()
        first_ids = [task["task_id"] for task in data.column("task")]
        data.publish_task()
        assert [task["task_id"] for task in data.column("task")] == first_ids
        assert context.client.statistics()["tasks"] == len(image_dataset)

    def test_get_result_collects_all_assignments(self, context, image_dataset):
        data = build_crowddata(context, image_dataset)
        results = data.column("result")
        assert all(result["complete"] for result in results)
        assert all(len(result["assignments"]) == 3 for result in results)

    def test_get_result_before_publish_rejected(self, context, image_dataset):
        data = context.CrowdData(image_dataset.images, "imgs")
        data.set_presenter(ImageLabelPresenter())
        with pytest.raises(CrowdDataError):
            data.get_result()

    def test_non_blocking_get_result_returns_partial(self, context, image_dataset):
        data = build_crowddata(context, image_dataset, publish=False)
        data.publish_task(n_assignments=3)
        data.get_result(blocking=False)
        results = data.column("result")
        assert all(not result["complete"] for result in results)
        # Partial results are not persisted, so the cache stays empty.
        assert data.cache.result_count() == 0

    def test_publish_counts_cache_hits_on_second_call(self, context, image_dataset):
        data = build_crowddata(context, image_dataset, publish=False)
        data.publish_task()
        data.publish_task()
        last = data.manipulation_history()[-1]
        assert last.operation == "publish_task"
        assert last.cache_hits == len(image_dataset)


class TestQualityControlStep:
    def test_mv_adds_column(self, accurate_context, image_dataset):
        data = build_crowddata(accurate_context, image_dataset)
        data.mv()
        assert "mv" in data.columns
        assert set(data.column("mv")) <= {"Yes", "No"}

    def test_mv_matches_truth_with_accurate_workers(self, accurate_context, image_dataset):
        data = build_crowddata(accurate_context, image_dataset)
        data.mv()
        truth = [image_dataset.labels[url] for url in image_dataset.images]
        agreement = sum(a == b for a, b in zip(data.column("mv"), truth)) / len(truth)
        assert agreement >= 0.9

    def test_em_and_wmv_columns(self, accurate_context, image_dataset):
        data = build_crowddata(accurate_context, image_dataset)
        data.em().wmv()
        assert "em" in data.columns and "wmv" in data.columns

    def test_custom_column_name(self, accurate_context, image_dataset):
        data = build_crowddata(accurate_context, image_dataset)
        data.quality_control("mv", column="final_label")
        assert "final_label" in data.columns

    def test_quality_control_before_results_rejected(self, context, image_dataset):
        data = context.CrowdData(image_dataset.images, "imgs")
        with pytest.raises(CrowdDataError):
            data.mv()

    def test_last_aggregation_exposed(self, accurate_context, image_dataset):
        data = build_crowddata(accurate_context, image_dataset)
        data.mv()
        assert data.last_aggregation is not None
        assert data.last_aggregation.method == "mv"
        assert len(data.last_aggregation.decisions) == len(image_dataset)


class TestExtendFilterClear:
    def test_extend_adds_only_new_objects(self, context, image_dataset):
        data = context.CrowdData(image_dataset.images[:5], "imgs")
        data.set_presenter(ImageLabelPresenter())
        data.extend(image_dataset.images[3:8])
        assert len(data) == 8
        assert data.column("object") == image_dataset.images[:8]

    def test_extend_after_results_publishes_only_new_tasks(self, context, image_dataset):
        data = context.CrowdData(
            image_dataset.images[:5], "imgs", ground_truth=image_dataset.ground_truth
        )
        data.set_presenter(ImageLabelPresenter())
        data.publish_task(3).get_result()
        tasks_before = context.client.statistics()["tasks"]
        data.extend(image_dataset.images[5:8]).publish_task(3).get_result().mv()
        assert context.client.statistics()["tasks"] == tasks_before + 3
        assert len(data.column("mv")) == 8

    def test_append_single_object(self, context):
        data = context.CrowdData(["a"], "t")
        data.append("b")
        assert data.column("object") == ["a", "b"]

    def test_extend_pads_derived_columns(self, accurate_context, image_dataset):
        data = build_crowddata(accurate_context, image_dataset)
        data.mv()
        data.extend(["http://img.example.org/new.jpg"])
        assert len(data.column("mv")) == len(data)
        assert data.column("mv")[-1] is None

    def test_filter_keeps_matching_rows(self, accurate_context, image_dataset):
        data = build_crowddata(accurate_context, image_dataset)
        data.mv()
        data.filter(lambda row: row["mv"] == "Yes")
        assert all(value == "Yes" for value in data.column("mv"))
        assert len(data) <= len(image_dataset)

    def test_filter_does_not_touch_cache(self, accurate_context, image_dataset):
        data = build_crowddata(accurate_context, image_dataset)
        cached = data.cache.result_count()
        data.filter(lambda row: False)
        assert len(data) == 0
        assert data.cache.result_count() == cached

    def test_clear_empties_rows_and_cache(self, context, image_dataset):
        data = build_crowddata(context, image_dataset)
        data.clear()
        assert len(data) == 0
        assert data.cache.task_count() == 0
        assert data.cache.result_count() == 0


class TestLineageAndHistory:
    def test_lineage_has_one_record_per_answer(self, context, image_dataset):
        data = build_crowddata(context, image_dataset)
        lineage = data.lineage()
        assert len(lineage) == len(image_dataset) * 3

    def test_lineage_workers_subset_of_pool(self, context, image_dataset):
        data = build_crowddata(context, image_dataset)
        assert set(data.lineage().workers()) <= set(context.worker_pool.worker_ids())

    def test_lineage_before_results_raises(self, context, image_dataset):
        data = context.CrowdData(image_dataset.images, "imgs")
        with pytest.raises(LineageError):
            data.lineage()

    def test_manipulation_history_records_all_steps(self, accurate_context, image_dataset):
        data = build_crowddata(accurate_context, image_dataset)
        data.mv()
        assert data.log.operations() == [
            "init",
            "set_presenter",
            "publish_task",
            "get_result",
            "quality_control",
        ]

    def test_describe(self, accurate_context, image_dataset):
        data = build_crowddata(accurate_context, image_dataset)
        description = data.describe()
        assert description["table"] == "imgs"
        assert description["rows"] == len(image_dataset)
        assert description["cache"]["cached_tasks"] == len(image_dataset)
