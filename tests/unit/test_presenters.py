"""Unit tests for the task presenters."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidAnswerError, PresenterError
from repro.presenters import (
    ImageComparisonPresenter,
    ImageLabelPresenter,
    RecordComparisonPresenter,
    TextComparisonPresenter,
    TextLabelPresenter,
    registry,
)
from repro.presenters.base import BasePresenter, PresenterRegistry


class TestImageLabelPresenter:
    def test_render_includes_image_and_choices(self):
        presenter = ImageLabelPresenter(question="Face?")
        html = presenter.render("http://x/1.jpg")
        assert 'src="http://x/1.jpg"' in html
        assert "Face?" in html
        assert 'value="Yes"' in html and 'value="No"' in html

    def test_render_dict_object_with_caption(self):
        html = ImageLabelPresenter().render({"url": "http://x/1.jpg", "caption": "A cat"})
        assert "A cat" in html

    def test_build_task_info(self):
        info = ImageLabelPresenter(question="Q").build_task_info("http://x/1.jpg", true_answer="Yes")
        assert info["task_type"] == "image_label"
        assert info["object"] == "http://x/1.jpg"
        assert info["candidates"] == ["Yes", "No"]
        assert info["_true_answer"] == "Yes"

    def test_build_task_info_without_truth(self):
        info = ImageLabelPresenter().build_task_info("http://x/1.jpg")
        assert "_true_answer" not in info


class TestPairPresenters:
    def test_image_cmp_accepts_tuple_and_dict(self):
        presenter = ImageComparisonPresenter()
        assert "left" in presenter.render(("http://a", "http://b"))
        assert "right" in presenter.render({"left": "http://a", "right": "http://b"})

    def test_image_cmp_rejects_non_pairs(self):
        with pytest.raises(PresenterError):
            ImageComparisonPresenter().render("just one url")

    def test_text_cmp_renders_both_sides(self):
        html = TextComparisonPresenter().render(("iphone 6", "apple iphone6"))
        assert "iphone 6" in html and "apple iphone6" in html

    def test_text_cmp_rejects_missing_keys(self):
        with pytest.raises(PresenterError):
            TextComparisonPresenter().render({"left": "only left"})

    def test_record_cmp_renders_attribute_table(self):
        html = RecordComparisonPresenter().render(
            {"left": {"name": "a", "price": 1}, "right": {"name": "b"}}
        )
        assert "<table" in html
        assert "price" in html

    def test_record_cmp_rejects_non_mapping_sides(self):
        with pytest.raises(PresenterError):
            RecordComparisonPresenter().render(("not a dict", {"name": "b"}))


class TestTextLabelPresenter:
    def test_default_candidates(self):
        assert TextLabelPresenter().candidates == ["Positive", "Neutral", "Negative"]

    def test_custom_candidates(self):
        presenter = TextLabelPresenter(candidates=["spam", "ham"])
        assert presenter.candidates == ["spam", "ham"]


class TestAnswerValidation:
    def test_valid_answer_passes_through(self):
        assert ImageLabelPresenter().validate_answer("Yes") == "Yes"

    def test_case_insensitive_match_normalised(self):
        assert ImageLabelPresenter().validate_answer("yes") == "Yes"

    def test_invalid_answer_rejected(self):
        with pytest.raises(InvalidAnswerError):
            ImageLabelPresenter().validate_answer("Maybe")

    def test_free_text_presenter_accepts_anything(self):
        presenter = TextLabelPresenter(candidates=[])
        assert presenter.validate_answer("anything at all") == "anything at all"


class TestTemplateHtml:
    def test_simple_presenter_embeds_placeholder(self):
        assert "{{object}}" in ImageLabelPresenter().template_html()

    def test_pair_presenter_falls_back_to_skeleton(self):
        html = RecordComparisonPresenter().template_html()
        assert "{{object}}" in html
        assert "record_cmp" in html


class TestRegistry:
    def test_known_types_include_builtin_presenters(self):
        for task_type in ("image_label", "image_cmp", "text_cmp", "text_label", "record_cmp"):
            assert task_type in registry.known_types()

    def test_build_from_description_roundtrip(self):
        presenter = ImageLabelPresenter(question="Custom?", candidates=["A", "B"])
        rebuilt = registry.build(presenter.describe())
        assert isinstance(rebuilt, ImageLabelPresenter)
        assert rebuilt.question == "Custom?"
        assert rebuilt.candidates == ["A", "B"]

    def test_unknown_type_raises(self):
        with pytest.raises(PresenterError):
            registry.get("nonexistent_type")

    def test_duplicate_registration_of_different_class_rejected(self):
        local = PresenterRegistry()

        @local.register
        class One(BasePresenter):
            task_type = "dup"

            def render_object(self, obj):
                return str(obj)

        with pytest.raises(PresenterError):

            @local.register
            class Two(BasePresenter):
                task_type = "dup"

                def render_object(self, obj):
                    return str(obj)

    def test_re_registering_same_class_is_allowed(self):
        local = PresenterRegistry()

        class Solo(BasePresenter):
            task_type = "solo"

            def render_object(self, obj):
                return str(obj)

        local.register(Solo)
        local.register(Solo)
        assert local.get("solo") is Solo
