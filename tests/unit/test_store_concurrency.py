"""Concurrency tests for the durable task store's multi-writer protocol.

PR 6's wire boundary lets two *server processes* share one durable store;
the correctness story rests on two engine-level atomics — ``put_new``
(compare-and-swap id leases, first-writer-wins name claims) and
``put_many(if_absent=True)`` (dedup-key claims).  These tests exercise the
same protocol in-process with threads, where races are cheap to provoke:
two ``DurableTaskStore`` handles opened ``shared=True`` on one engine stand
in for two servers.  The cross-process version of the same assertions runs
in ``tests/integration/test_wire_cluster.py``.
"""

from __future__ import annotations

import threading

import pytest

from repro.config import PlatformConfig, WorkerPoolConfig
from repro.platform.models import Project, Task
from repro.platform.server import PlatformServer
from repro.platform.store import DurableTaskStore
from repro.storage import MemoryEngine, SqliteEngine
from repro.workers.pool import WorkerPool

#: Both engine families that back durable platforms must pass every
#: scenario: memory (threads in one server process) and sqlite (the
#: cross-process artifact the wire cluster shares).
ENGINES = ("memory", "sqlite")


@pytest.fixture(params=ENGINES)
def engine(request, tmp_path):
    if request.param == "memory":
        built = MemoryEngine()
    else:
        built = SqliteEngine(str(tmp_path / "store.db"))
    yield built
    built.close()


def open_store(engine) -> DurableTaskStore:
    """One 'server process' worth of store handle on the shared engine."""
    return DurableTaskStore(engine, shared=True)


def run_threads(workers) -> None:
    """Run the callables concurrently; re-raise the first worker failure."""
    errors: list[BaseException] = []

    def guarded(worker):
        try:
            worker()
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=guarded, args=(w,)) for w in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestIdAllocation:
    def test_two_handles_never_hand_out_overlapping_ranges(self, engine):
        stores = [open_store(engine), open_store(engine)]
        per_thread = 40
        ranges: list[tuple[int, int]] = []
        lock = threading.Lock()

        def allocate(store):
            def worker():
                for _ in range(per_thread):
                    start = store.allocate_task_ids(3)
                    with lock:
                        ranges.append((start, 3))

            return worker

        run_threads([allocate(store) for store in stores for _ in range(2)])
        ids = [start + offset for start, count in ranges for offset in range(count)]
        assert len(ids) == len(set(ids)), "overlapping id ranges handed out"
        assert len(ids) == 2 * 2 * per_thread * 3

    def test_mixed_counters_stay_disjoint_per_counter(self, engine):
        stores = [open_store(engine), open_store(engine)]
        seen: dict[str, list[int]] = {"project": [], "task": [], "run": []}
        lock = threading.Lock()

        def worker_for(store):
            def worker():
                for _ in range(15):
                    allocations = (
                        ("project", store.allocate_project_id(), 1),
                        ("task", store.allocate_task_ids(2), 2),
                        ("run", store.allocate_run_ids(2, clock_time=1.0), 2),
                    )
                    with lock:
                        for kind, start, count in allocations:
                            seen[kind].extend(range(start, start + count))

            return worker

        run_threads([worker_for(store) for store in stores])
        for kind, ids in seen.items():
            assert len(ids) == len(set(ids)), f"duplicate {kind} ids"

    def test_fresh_handle_resumes_past_everything_allocated(self, engine):
        first = open_store(engine)
        top = max(first.allocate_task_ids(5) + 4, first.allocate_task_ids(1))
        # A handle opened later (a restarted server) must not re-issue ids.
        second = open_store(engine)
        assert second.allocate_task_ids(1) > top


class TestDedupClaims:
    def test_single_winner_per_key_across_handles(self, engine):
        stores = [open_store(engine), open_store(engine)]
        project = Project(project_id=1, name="race", short_name="race")
        stores[0].put_project(project)
        keys = [f"obj-{i}" for i in range(30)]
        outcomes: list[dict[str, int]] = []
        lock = threading.Lock()

        def claimer(store, base):
            def worker():
                claims = [(key, base + i) for i, key in enumerate(keys)]
                won = store.claim_dedup_keys(1, claims)
                with lock:
                    outcomes.append(won)

            return worker

        run_threads(
            [claimer(store, 1000 * (n + 1)) for n, store in enumerate(stores)]
        )
        assert len(outcomes) == 2
        # Every claimer observes the *same* winner for every key.
        assert outcomes[0] == outcomes[1]
        for key, task_id in outcomes[0].items():
            assert task_id in (1000 + keys.index(key), 2000 + keys.index(key))

    def test_claim_is_stable_after_the_race(self, engine):
        store = open_store(engine)
        store.put_project(Project(project_id=1, name="p", short_name="p"))
        first = store.claim_dedup_keys(1, [("k", 11)])
        second = store.claim_dedup_keys(1, [("k", 99)])
        assert first == second == {"k": 11}


def make_server(store) -> PlatformServer:
    pool = WorkerPool.from_config(
        WorkerPoolConfig(size=8, mean_accuracy=0.95, seed=5)
    )
    return PlatformServer(worker_pool=pool, config=PlatformConfig(seed=5), store=store)


SPECS = [
    {
        "info": {"url": f"img-{i}", "_true_answer": "Yes"},
        "n_assignments": 1,
        "dedup_key": f"obj-{i}",
    }
    for i in range(20)
]


class TestTwoServersOneStore:
    def test_concurrent_create_tasks_is_exactly_once(self, engine):
        servers = [make_server(open_store(engine)) for _ in range(2)]
        project_id = servers[0].create_project("shared").project_id
        assert servers[1].create_project("shared").project_id == project_id

        results: list[list[Task]] = [[], []]

        def publisher(index):
            def worker():
                results[index] = servers[index].create_tasks(project_id, SPECS)

            return worker

        run_threads([publisher(0), publisher(1)])
        ids_a = [task.task_id for task in results[0]]
        ids_b = [task.task_id for task in results[1]]
        # Both servers return the same task per dedup key, in spec order...
        assert ids_a == ids_b
        # ...and the store holds exactly one task per key, visible to both.
        for server in servers:
            tasks = server.list_tasks(project_id)
            assert sorted(t.task_id for t in tasks) == sorted(ids_a)
            assert len(tasks) == len(SPECS)

    def test_concurrent_same_name_create_project_converges(self, engine):
        servers = [make_server(open_store(engine)) for _ in range(2)]
        created: list[Project] = [None, None]  # type: ignore[list-item]

        def creator(index):
            def worker():
                created[index] = servers[index].create_project("contested")

            return worker

        run_threads([creator(0), creator(1)])
        assert created[0].project_id == created[1].project_id
        # The loser's discarded project id must never resurface as a live
        # project on either server.
        for server in servers:
            assert server.find_project("contested").project_id == created[0].project_id
            assert len(server.list_projects()) == 1

    def test_interleaved_publish_work_collect_double_pays_nothing(self, engine):
        # The end-to-end duplicate-spend check: two servers race the same
        # publish, then the crowd answers once per task.
        servers = [make_server(open_store(engine)) for _ in range(2)]
        project_id = servers[0].create_project("spend").project_id
        servers[1].create_project("spend")

        run_threads(
            [
                (lambda s: lambda: s.create_tasks(project_id, SPECS))(server)
                for server in servers
            ]
        )
        created = servers[0].simulate_work(project_id=project_id)
        created += servers[1].simulate_work(project_id=project_id)
        assert created == len(SPECS)  # top-up idempotence: one answer per task
        runs = servers[1].get_task_runs_for_project(project_id)
        assert len(runs) == len(SPECS)
        assert all(len(answers) == 1 for answers in runs.values())
