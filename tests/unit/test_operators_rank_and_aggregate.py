"""Unit tests for sort, max, top-k, filter, count and dedup operators."""

from __future__ import annotations

import pytest

from repro import CrowdContext
from repro.config import ReprowdConfig, StorageConfig, WorkerPoolConfig
from repro.datasets import (
    make_entity_resolution_dataset,
    make_image_label_dataset,
    make_ranking_dataset,
)
from repro.operators import (
    CrowdCount,
    CrowdDedup,
    CrowdFilter,
    CrowdMax,
    CrowdSort,
    CrowdTopK,
)


def accurate_context(seed=7):
    config = ReprowdConfig(
        storage=StorageConfig(engine="memory"),
        workers=WorkerPoolConfig(size=25, mean_accuracy=0.98, accuracy_spread=0.01, seed=seed),
    )
    return CrowdContext(config=config)


@pytest.fixture
def ranking():
    return make_ranking_dataset(num_items=10, seed=3)


@pytest.fixture
def images():
    return make_image_label_dataset(num_images=24, positive_fraction=0.5, seed=5)


class TestCrowdSort:
    def test_recovers_hidden_order_with_accurate_workers(self, ranking):
        result = CrowdSort(accurate_context(), "sort").sort(
            list(ranking.items), ground_truth=ranking.pair_ground_truth
        )
        assert result.kendall_tau(ranking.ranking()) >= 0.85

    def test_task_count_is_quadratic(self, ranking):
        items = list(ranking.items)
        result = CrowdSort(accurate_context(), "sort").sort(
            items, ground_truth=ranking.pair_ground_truth
        )
        assert result.report.crowd_tasks == len(items) * (len(items) - 1) // 2

    def test_scores_sum_to_number_of_comparisons(self, ranking):
        result = CrowdSort(accurate_context(), "sort").sort(
            list(ranking.items), ground_truth=ranking.pair_ground_truth
        )
        assert sum(result.scores.values()) == result.report.crowd_tasks

    def test_single_item(self):
        result = CrowdSort(accurate_context(), "sort").sort(["only"])
        assert result.ranking == ["only"]
        assert result.report.crowd_tasks == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CrowdSort(accurate_context(), "sort").sort([])

    def test_kendall_tau_reversed_is_negative(self, ranking):
        result = CrowdSort(accurate_context(), "sort").sort(
            list(ranking.items), ground_truth=ranking.pair_ground_truth
        )
        assert result.kendall_tau(list(reversed(ranking.ranking()))) <= -0.85


class TestCrowdMax:
    def test_finds_best_item(self, ranking):
        result = CrowdMax(accurate_context(), "max").max(
            list(ranking.items), ground_truth=ranking.pair_ground_truth
        )
        assert result.winner == ranking.ranking()[0]

    def test_uses_n_minus_one_comparisons(self, ranking):
        items = list(ranking.items)
        result = CrowdMax(accurate_context(), "max").max(
            items, ground_truth=ranking.pair_ground_truth
        )
        assert result.report.crowd_tasks == len(items) - 1

    def test_cheaper_than_sort(self, ranking):
        items = list(ranking.items)
        max_result = CrowdMax(accurate_context(), "max").max(
            items, ground_truth=ranking.pair_ground_truth
        )
        sort_result = CrowdSort(accurate_context(seed=8), "sort").sort(
            items, ground_truth=ranking.pair_ground_truth
        )
        assert max_result.report.crowd_tasks < sort_result.report.crowd_tasks

    def test_single_item_needs_no_crowd(self):
        result = CrowdMax(accurate_context(), "max").max(["only"])
        assert result.winner == "only"
        assert result.report.crowd_tasks == 0

    def test_rounds_shrink_geometrically(self, ranking):
        result = CrowdMax(accurate_context(), "max").max(
            list(ranking.items), ground_truth=ranking.pair_ground_truth
        )
        sizes = [len(round_items) for round_items in result.rounds]
        assert sizes[0] == len(ranking.items)
        assert sizes[-1] == 1
        assert all(later <= earlier for earlier, later in zip(sizes, sizes[1:]))


class TestCrowdTopK:
    def test_returns_k_items(self, ranking):
        result = CrowdTopK(accurate_context(), "topk").top_k(
            list(ranking.items), 3, ground_truth=ranking.pair_ground_truth
        )
        assert len(result.top_items) == 3

    def test_high_recall_with_accurate_workers(self, ranking):
        result = CrowdTopK(accurate_context(), "topk").top_k(
            list(ranking.items), 3, ground_truth=ranking.pair_ground_truth
        )
        assert result.recall_against(ranking.ranking()[:3]) >= 2 / 3

    def test_k_larger_than_input_is_clamped(self, ranking):
        items = list(ranking.items)[:4]
        result = CrowdTopK(accurate_context(), "topk").top_k(
            items, 10, ground_truth=ranking.pair_ground_truth
        )
        assert sorted(result.top_items) == sorted(items)

    def test_invalid_k(self, ranking):
        with pytest.raises(ValueError):
            CrowdTopK(accurate_context(), "topk").top_k(list(ranking.items), 0)


class TestCrowdFilter:
    def test_partitions_items(self, images):
        result = CrowdFilter(accurate_context(), "filter").filter(
            images.images, ground_truth=images.ground_truth
        )
        assert sorted(result.kept + result.rejected) == sorted(images.images)

    def test_matches_ground_truth_with_accurate_workers(self, images):
        result = CrowdFilter(accurate_context(), "filter").filter(
            images.images, ground_truth=images.ground_truth
        )
        true_yes = {url for url, label in images.labels.items() if label == "Yes"}
        agreement = len(set(result.kept) & true_yes) / max(1, len(true_yes))
        assert agreement >= 0.85

    def test_report_selectivity(self, images):
        result = CrowdFilter(accurate_context(), "filter").filter(
            images.images, ground_truth=images.ground_truth
        )
        assert result.report.extras["selectivity"] == pytest.approx(
            len(result.kept) / len(images.images)
        )

    def test_custom_keep_answer(self, images):
        result = CrowdFilter(accurate_context(), "filter", keep_answer="No").filter(
            images.images, ground_truth=images.ground_truth
        )
        true_no = {url for url, label in images.labels.items() if label == "No"}
        agreement = len(set(result.kept) & true_no) / max(1, len(true_no))
        assert agreement >= 0.85


class TestCrowdCount:
    def test_estimate_close_to_truth(self, images):
        result = CrowdCount(accurate_context(), "count", sample_size=20).count(
            images.images, ground_truth=images.ground_truth
        )
        true_count = sum(1 for label in images.labels.values() if label == "Yes")
        assert abs(result.estimate - true_count) <= 6

    def test_sample_capped_at_population(self, images):
        result = CrowdCount(accurate_context(), "count", sample_size=500).count(
            images.images, ground_truth=images.ground_truth
        )
        assert result.sample_size == len(images.images)

    def test_confidence_interval_contains_selectivity(self, images):
        result = CrowdCount(accurate_context(), "count", sample_size=15).count(
            images.images, ground_truth=images.ground_truth
        )
        low, high = result.confidence_interval
        assert low <= result.selectivity <= high

    def test_sampling_costs_less_than_full_filter(self, images):
        count_result = CrowdCount(accurate_context(), "count", sample_size=10).count(
            images.images, ground_truth=images.ground_truth
        )
        assert count_result.report.crowd_tasks == 10
        assert count_result.report.crowd_tasks < len(images.images)

    def test_invalid_sample_size(self):
        with pytest.raises(ValueError):
            CrowdCount(accurate_context(), "count", sample_size=0)


class TestCrowdDedup:
    def test_recovers_cluster_count(self):
        er = make_entity_resolution_dataset(num_entities=10, duplicates_per_entity=3, seed=11)
        result = CrowdDedup(accurate_context(), "dedup").dedup(
            er.records, ground_truth=er.pair_ground_truth
        )
        assert abs(result.num_entities() - len(er.clusters)) <= 2

    def test_every_record_is_clustered_once(self):
        er = make_entity_resolution_dataset(num_entities=8, duplicates_per_entity=3, seed=13)
        result = CrowdDedup(accurate_context(), "dedup").dedup(
            er.records, ground_truth=er.pair_ground_truth
        )
        clustered = [record_id for cluster in result.clusters for record_id in cluster]
        assert sorted(clustered) == er.record_ids()

    def test_canonical_member_of_cluster(self):
        er = make_entity_resolution_dataset(num_entities=6, duplicates_per_entity=3, seed=15)
        result = CrowdDedup(accurate_context(), "dedup").dedup(
            er.records, ground_truth=er.pair_ground_truth
        )
        for index, cluster in enumerate(result.clusters):
            assert result.canonical[index] in cluster

    def test_without_transitivity_uses_plain_join(self):
        er = make_entity_resolution_dataset(num_entities=6, duplicates_per_entity=2, seed=17)
        result = CrowdDedup(accurate_context(), "dedup", use_transitivity=False).dedup(
            er.records, ground_truth=er.pair_ground_truth
        )
        assert result.report.operator == "crowd_join"
