"""Unit tests for spammer detection and confidence measures."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import InsufficientAnswersError
from repro.quality import answer_entropy, detect_spammers, spammer_score, vote_confidence
from repro.quality.confidence import wilson_lower_bound


class TestSpammerScore:
    def test_perfect_worker_scores_one(self):
        assert spammer_score(1.0, 2) == 1.0

    def test_chance_level_scores_zero(self):
        assert spammer_score(0.5, 2) == 0.0
        assert spammer_score(0.25, 4) == 0.0

    def test_below_chance_scores_zero(self):
        assert spammer_score(0.3, 2) == 0.0

    def test_midway_score(self):
        assert spammer_score(0.75, 2) == pytest.approx(0.5)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            spammer_score(1.5, 2)
        with pytest.raises(ValueError):
            spammer_score(0.5, 0)


class TestDetectSpammers:
    def test_flags_low_quality_workers(self):
        quality = {"good": 0.95, "spam": 0.52, "ok": 0.8}
        assert detect_spammers(quality, num_labels=2, threshold=0.3) == ["spam"]

    def test_threshold_zero_flags_nothing_above_chance(self):
        quality = {"good": 0.9, "spam": 0.55}
        assert detect_spammers(quality, num_labels=2, threshold=0.0) == []

    def test_result_is_sorted(self):
        quality = {"z": 0.5, "a": 0.5}
        assert detect_spammers(quality, num_labels=2) == ["a", "z"]


class TestVoteConfidence:
    def test_majority_share(self):
        assert vote_confidence(["Yes", "Yes", "No"]) == pytest.approx(2 / 3)

    def test_unanimous(self):
        assert vote_confidence(["A", "A"]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(InsufficientAnswersError):
            vote_confidence([])


class TestAnswerEntropy:
    def test_unanimous_is_zero(self):
        assert answer_entropy(["Yes", "Yes", "Yes"]) == 0.0

    def test_fifty_fifty_is_one_bit(self):
        assert answer_entropy(["Yes", "No"]) == pytest.approx(1.0)

    def test_uniform_four_way_is_two_bits(self):
        assert answer_entropy(["a", "b", "c", "d"]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(InsufficientAnswersError):
            answer_entropy([])


class TestWilsonLowerBound:
    def test_bounded_below_point_estimate(self):
        assert wilson_lower_bound(8, 10) < 0.8

    def test_more_data_tightens_bound(self):
        assert wilson_lower_bound(80, 100) > wilson_lower_bound(8, 10)

    def test_zero_successes(self):
        assert wilson_lower_bound(0, 10) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(InsufficientAnswersError):
            wilson_lower_bound(1, 0)
        with pytest.raises(ValueError):
            wilson_lower_bound(11, 10)

    def test_monotone_in_successes(self):
        bounds = [wilson_lower_bound(successes, 20) for successes in range(21)]
        assert bounds == sorted(bounds)
        assert not math.isnan(bounds[-1])
