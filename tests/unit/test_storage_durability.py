"""Durability and recovery tests for the persistent storage engines."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import CorruptLogError
from repro.storage import LogStructuredEngine, SqliteEngine


class TestSqliteDurability:
    def test_data_survives_reopen(self, tmp_path):
        path = str(tmp_path / "d.db")
        engine = SqliteEngine(path)
        engine.create_table("t")
        engine.put("t", "k", {"v": 1})
        engine.close()

        reopened = SqliteEngine(path)
        assert reopened.get("t", "k") == {"v": 1}
        assert reopened.list_tables() == ["t"]
        reopened.close()

    def test_two_logical_tables_share_one_file(self, tmp_path):
        path = str(tmp_path / "shared.db")
        engine = SqliteEngine(path)
        engine.create_table("alpha")
        engine.create_table("beta")
        engine.put("alpha", "k", "a")
        engine.put("beta", "k", "b")
        assert engine.get("alpha", "k") == "a"
        assert engine.get("beta", "k") == "b"
        engine.close()

    def test_versions_survive_reopen(self, tmp_path):
        path = str(tmp_path / "v.db")
        engine = SqliteEngine(path)
        engine.create_table("t")
        engine.put("t", "k", 1)
        engine.put("t", "k", 2)
        engine.close()
        reopened = SqliteEngine(path)
        assert reopened.get_record("t", "k").version == 2
        reopened.close()

    def test_memory_path_supported(self):
        engine = SqliteEngine(":memory:")
        engine.create_table("t")
        engine.put("t", "k", 1)
        assert engine.get("t", "k") == 1
        engine.close()


class TestLogEngineRecovery:
    def test_data_survives_reopen(self, tmp_path):
        path = str(tmp_path / "log_db")
        engine = LogStructuredEngine(path, snapshot_every=1000)
        engine.create_table("t")
        for index in range(20):
            engine.put("t", f"k{index}", index)
        engine.close()

        reopened = LogStructuredEngine(path, snapshot_every=1000)
        assert reopened.count("t") == 20
        assert reopened.get("t", "k7") == 7
        reopened.close()

    def test_recovery_without_snapshot(self, tmp_path):
        """Simulate a crash before close(): only the log exists."""
        path = str(tmp_path / "crashy")
        engine = LogStructuredEngine(path, snapshot_every=10_000)
        engine.create_table("t")
        engine.put("t", "a", 1)
        engine.put("t", "b", 2)
        engine.flush()
        # Abandon without close() — no snapshot is written.
        reopened = LogStructuredEngine(path, snapshot_every=10_000)
        assert reopened.get("t", "a") == 1
        assert reopened.get("t", "b") == 2
        assert reopened.recovered_operations >= 3
        reopened.close()

    def test_snapshot_bounds_replay(self, tmp_path):
        path = str(tmp_path / "snap")
        engine = LogStructuredEngine(path, snapshot_every=5)
        engine.create_table("t")
        for index in range(23):
            engine.put("t", f"k{index}", index)
        engine.close()
        reopened = LogStructuredEngine(path, snapshot_every=5)
        assert reopened.count("t") == 23
        # Everything up to the final snapshot is loaded from it, so replay is short.
        assert reopened.recovered_operations <= 5
        reopened.close()

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = str(tmp_path / "torn")
        engine = LogStructuredEngine(path, snapshot_every=10_000)
        engine.create_table("t")
        engine.put("t", "a", 1)
        engine.flush()
        with open(engine.log_path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "put", "table": "t", "key": "b"')  # torn write
        reopened = LogStructuredEngine(path, snapshot_every=10_000)
        assert reopened.get("t", "a") == 1
        assert reopened.get("t", "b") is None
        reopened.close()

    def test_corruption_in_the_middle_raises(self, tmp_path):
        path = str(tmp_path / "corrupt")
        engine = LogStructuredEngine(path, snapshot_every=10_000)
        engine.create_table("t")
        engine.put("t", "a", 1)
        engine.close()
        with open(engine.log_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        lines[0] = "NOT JSON AT ALL\n"
        with open(engine.log_path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.raises(CorruptLogError):
            LogStructuredEngine(path, snapshot_every=10_000)

    def test_unknown_operation_raises(self, tmp_path):
        path = str(tmp_path / "unknown_op")
        engine = LogStructuredEngine(path, snapshot_every=10_000)
        engine.create_table("t")
        engine.close()
        with open(engine.log_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"op": "explode", "table": "t", "seq": 99}) + "\n")
            handle.write(json.dumps({"op": "create_table", "table": "x", "seq": 100}) + "\n")
        with pytest.raises(CorruptLogError):
            LogStructuredEngine(path, snapshot_every=10_000)

    def test_delete_survives_recovery(self, tmp_path):
        path = str(tmp_path / "del")
        engine = LogStructuredEngine(path, snapshot_every=10_000)
        engine.create_table("t")
        engine.put("t", "a", 1)
        engine.delete("t", "a")
        engine.flush()
        reopened = LogStructuredEngine(path, snapshot_every=10_000)
        assert reopened.get("t", "a") is None
        reopened.close()

    def test_invalid_snapshot_every(self, tmp_path):
        with pytest.raises(ValueError):
            LogStructuredEngine(str(tmp_path / "bad"), snapshot_every=0)
