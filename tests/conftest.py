"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import os

import pytest


def pytest_collection_modifyitems(items):
    """Mark everything under tests/property with the ``property`` marker.

    Lets ``-m "not property"`` (see ``make test-fast``) skip the Hypothesis
    suites without each file having to declare a pytestmark.
    """
    for item in items:
        path = str(item.fspath).replace(os.sep, "/")
        if "/tests/property/" in path:
            item.add_marker(pytest.mark.property)

from repro import CrowdContext
from repro.config import ReprowdConfig, StorageConfig, WorkerPoolConfig
from repro.datasets import (
    make_entity_resolution_dataset,
    make_image_label_dataset,
    make_ranking_dataset,
)
from repro.storage import MemoryEngine, ShardedEngine, SqliteEngine, LogStructuredEngine
from repro.storage.testing import ENGINE_NAMES, build_engine


def make_sharded_engine(base_path, num_shards=3):
    """A sharded engine over *num_shards* SQLite shard files under *base_path*."""
    return ShardedEngine(
        [SqliteEngine(str(base_path / f"shard-{index:02d}.db")) for index in range(num_shards)]
    )


@pytest.fixture
def memory_engine():
    """A fresh in-memory storage engine."""
    engine = MemoryEngine()
    yield engine
    engine.close()


@pytest.fixture
def sqlite_engine(tmp_path):
    """A fresh SQLite engine backed by a temporary file."""
    engine = SqliteEngine(str(tmp_path / "test.db"))
    yield engine
    engine.close()


@pytest.fixture
def log_engine(tmp_path):
    """A fresh log-structured engine backed by temporary files."""
    engine = LogStructuredEngine(str(tmp_path / "test_log"), snapshot_every=50)
    yield engine
    engine.close()


@pytest.fixture
def sharded_engine(tmp_path):
    """A fresh sharded engine over three SQLite shard files."""
    engine = make_sharded_engine(tmp_path)
    yield engine
    engine.close()


@pytest.fixture(params=ENGINE_NAMES)
def any_engine(request, tmp_path):
    """Parametrised fixture running a test against every registry engine.

    The engine list comes from :mod:`repro.storage.testing` — the single
    registry every cross-engine suite derives from — so a newly added
    engine cannot silently skip coverage.
    """
    engine = build_engine(request.param, tmp_path)
    yield engine
    engine.close()


@pytest.fixture
def context():
    """An in-memory CrowdContext with a reliable-ish worker pool."""
    ctx = CrowdContext.in_memory(seed=7)
    yield ctx
    ctx.close()


@pytest.fixture
def accurate_context():
    """Context whose workers are almost always correct (accuracy 0.97)."""
    config = ReprowdConfig(
        storage=StorageConfig(engine="memory", path=":memory:"),
        workers=WorkerPoolConfig(size=25, mean_accuracy=0.97, accuracy_spread=0.02, seed=7),
    )
    ctx = CrowdContext(config=config)
    yield ctx
    ctx.close()


@pytest.fixture
def sqlite_context(tmp_path):
    """A CrowdContext backed by a SQLite file in a temp directory."""
    ctx = CrowdContext.with_sqlite(str(tmp_path / "ctx.db"), seed=7)
    yield ctx
    ctx.close()


@pytest.fixture
def image_dataset():
    """A small labeled image dataset."""
    return make_image_label_dataset(num_images=12, seed=5)


@pytest.fixture
def er_dataset():
    """A small entity-resolution dataset (10 entities x 3 duplicates)."""
    return make_entity_resolution_dataset(num_entities=10, duplicates_per_entity=3, seed=11)


@pytest.fixture
def ranking_dataset():
    """A small ranking dataset with a hidden total order."""
    return make_ranking_dataset(num_items=8, seed=3)
