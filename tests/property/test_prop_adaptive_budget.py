"""Property-based tests for the adaptive policy and the budget tracker."""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.budget import BudgetExceededError, BudgetTracker
from repro.quality.adaptive import AdaptivePolicy

answers_lists = st.lists(st.sampled_from(["Yes", "No", "Maybe"]), max_size=12)


class TestAdaptivePolicyProperties:
    @given(
        answers=answers_lists,
        max_assignments=st.integers(min_value=2, max_value=10),
        extra=st.integers(min_value=1, max_value=5),
        threshold=st.floats(min_value=0.5, max_value=1.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_next_batch_never_exceeds_the_cap(self, answers, max_assignments, extra, threshold):
        policy = AdaptivePolicy(
            initial_assignments=1,
            min_assignments=1,
            max_assignments=max_assignments,
            extra_per_round=extra,
            confidence_threshold=threshold,
        )
        batch = policy.next_batch(answers)
        assert batch >= 0
        assert len(answers) + batch <= max(len(answers), max_assignments)

    @given(answers=answers_lists, threshold=st.floats(min_value=0.5, max_value=1.0))
    @settings(max_examples=150, deadline=None)
    def test_resolved_items_request_nothing(self, answers, threshold):
        policy = AdaptivePolicy(
            initial_assignments=1, min_assignments=1, confidence_threshold=threshold
        )
        if policy.is_resolved(answers):
            assert policy.next_batch(answers) == 0

    @given(answers=answers_lists)
    @settings(max_examples=100, deadline=None)
    def test_confidence_is_a_probability(self, answers):
        for use_wilson in (False, True):
            policy = AdaptivePolicy(use_wilson=use_wilson)
            assert 0.0 <= policy.confidence(answers) <= 1.0

    @given(answers=answers_lists)
    @settings(max_examples=100, deadline=None)
    def test_wilson_is_never_more_optimistic_than_plain_share(self, answers):
        assume(answers)
        plain = AdaptivePolicy(use_wilson=False)
        wilson = AdaptivePolicy(use_wilson=True)
        assert wilson.confidence(answers) <= plain.confidence(answers) + 1e-9

    @given(
        unanimous_count=st.integers(min_value=2, max_value=10),
        threshold=st.floats(min_value=0.5, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_unanimous_items_above_min_are_resolved(self, unanimous_count, threshold):
        policy = AdaptivePolicy(
            min_assignments=2, max_assignments=12, confidence_threshold=threshold
        )
        assert policy.is_resolved(["Yes"] * unanimous_count)


class TestBudgetTrackerProperties:
    @given(charges=st.lists(st.integers(min_value=0, max_value=50), max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_spend_equals_sum_of_charges(self, charges):
        tracker = BudgetTracker(price_per_assignment=0.01)
        for assignments in charges:
            tracker.charge(assignments)
        assert tracker.spent == pytest.approx(sum(charges) * 0.01)
        assert tracker.total_assignments() == sum(charges)

    @given(
        budget_assignments=st.integers(min_value=1, max_value=100),
        charges=st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_budget_is_never_exceeded(self, budget_assignments, charges):
        price = 0.02
        tracker = BudgetTracker(price_per_assignment=price, budget=budget_assignments * price)
        for assignments in charges:
            try:
                tracker.charge(assignments)
            except BudgetExceededError:
                pass
        assert tracker.spent <= tracker.budget + 1e-9
        assert tracker.remaining is not None and tracker.remaining >= -1e-9

    @given(charges=st.lists(st.integers(min_value=0, max_value=10), max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_summary_is_consistent(self, charges):
        tracker = BudgetTracker(price_per_assignment=0.05)
        for assignments in charges:
            tracker.charge(assignments)
        summary = tracker.summary()
        assert summary["assignments"] == tracker.total_assignments()
        assert summary["charges"] == len(charges)
