"""Property-based tests for the adaptive policy and the budget tracker."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.budget import BudgetExceededError, BudgetTracker
from repro.quality.adaptive import AdaptivePolicy
from repro.quality.confidence import wilson_lower_bound

answers_lists = st.lists(st.sampled_from(["Yes", "No", "Maybe"]), max_size=12)


class TestAdaptivePolicyProperties:
    @given(
        answers=answers_lists,
        max_assignments=st.integers(min_value=2, max_value=10),
        extra=st.integers(min_value=1, max_value=5),
        threshold=st.floats(min_value=0.5, max_value=1.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_next_batch_never_exceeds_the_cap(self, answers, max_assignments, extra, threshold):
        policy = AdaptivePolicy(
            initial_assignments=1,
            min_assignments=1,
            max_assignments=max_assignments,
            extra_per_round=extra,
            confidence_threshold=threshold,
        )
        batch = policy.next_batch(answers)
        assert batch >= 0
        assert len(answers) + batch <= max(len(answers), max_assignments)

    @given(answers=answers_lists, threshold=st.floats(min_value=0.5, max_value=1.0))
    @settings(max_examples=150, deadline=None)
    def test_resolved_items_request_nothing(self, answers, threshold):
        policy = AdaptivePolicy(
            initial_assignments=1, min_assignments=1, confidence_threshold=threshold
        )
        if policy.is_resolved(answers):
            assert policy.next_batch(answers) == 0

    @given(answers=answers_lists)
    @settings(max_examples=100, deadline=None)
    def test_confidence_is_a_probability(self, answers):
        for use_wilson in (False, True):
            policy = AdaptivePolicy(use_wilson=use_wilson)
            assert 0.0 <= policy.confidence(answers) <= 1.0

    @given(answers=answers_lists)
    @settings(max_examples=100, deadline=None)
    def test_wilson_is_never_more_optimistic_than_plain_share(self, answers):
        assume(answers)
        plain = AdaptivePolicy(use_wilson=False)
        wilson = AdaptivePolicy(use_wilson=True)
        assert wilson.confidence(answers) <= plain.confidence(answers) + 1e-9

    @given(
        unanimous_count=st.integers(min_value=2, max_value=10),
        threshold=st.floats(min_value=0.5, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_unanimous_items_above_min_are_resolved(self, unanimous_count, threshold):
        policy = AdaptivePolicy(
            min_assignments=2, max_assignments=12, confidence_threshold=threshold
        )
        assert policy.is_resolved(["Yes"] * unanimous_count)


class TestWilsonConfidenceProperties:
    """The Wilson path computes the plurality count exactly.

    The count used to be reconstructed as ``round(share * len(answers))``,
    a float product; the fixed implementation feeds the true Counter
    maximum straight into :func:`wilson_lower_bound`.  These properties pin
    the exactness and the monotonicity the reconstruction endangered.
    """

    @given(answers=answers_lists)
    @settings(max_examples=150, deadline=None)
    def test_wilson_confidence_uses_the_exact_plurality_count(self, answers):
        assume(answers)
        policy = AdaptivePolicy(use_wilson=True)
        counts = Counter(answers)
        expected = wilson_lower_bound(max(counts.values()), len(answers))
        assert policy.confidence(answers) == expected

    @given(answers=answers_lists)
    @settings(max_examples=150, deadline=None)
    def test_counts_form_agrees_with_answer_list_form(self, answers):
        for use_wilson in (False, True):
            policy = AdaptivePolicy(use_wilson=use_wilson)
            counts = Counter(answers)
            assert policy.confidence_from_counts(counts) == policy.confidence(answers)
            assert policy.is_resolved_counts(counts) == policy.is_resolved(answers)
            assert policy.next_batch_counts(counts) == policy.next_batch(answers)

    @given(
        winners=st.integers(min_value=1, max_value=40),
        losers=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=150, deadline=None)
    def test_wilson_is_monotone_in_the_winner_count(self, winners, losers):
        assume(winners > losers)  # keep "Yes" the plurality after the increment
        policy = AdaptivePolicy(use_wilson=True)
        before = policy.confidence_from_counts({"Yes": winners, "No": losers})
        # One more vote for the winner at fixed total-loser count can only
        # raise the lower bound.
        after = policy.confidence_from_counts({"Yes": winners + 1, "No": losers})
        assert after >= before - 1e-12

    @given(counts=st.dictionaries(st.sampled_from(["A", "B", "C"]), st.integers(min_value=0, max_value=0), max_size=3))
    @settings(max_examples=20, deadline=None)
    def test_zero_tallies_yield_zero_confidence(self, counts):
        for use_wilson in (False, True):
            policy = AdaptivePolicy(use_wilson=use_wilson)
            assert policy.confidence_from_counts(counts) == 0.0


class TestBudgetTrackerProperties:
    @given(charges=st.lists(st.integers(min_value=0, max_value=50), max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_spend_equals_sum_of_charges(self, charges):
        tracker = BudgetTracker(price_per_assignment=0.01)
        for assignments in charges:
            tracker.charge(assignments)
        assert tracker.spent == pytest.approx(sum(charges) * 0.01)
        assert tracker.total_assignments() == sum(charges)

    @given(
        budget_assignments=st.integers(min_value=1, max_value=100),
        charges=st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_budget_is_never_exceeded(self, budget_assignments, charges):
        price = 0.02
        tracker = BudgetTracker(price_per_assignment=price, budget=budget_assignments * price)
        for assignments in charges:
            try:
                tracker.charge(assignments)
            except BudgetExceededError:
                pass
        assert tracker.spent <= tracker.budget + 1e-9
        assert tracker.remaining is not None and tracker.remaining >= -1e-9

    @given(charges=st.lists(st.integers(min_value=0, max_value=10), max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_summary_is_consistent(self, charges):
        tracker = BudgetTracker(price_per_assignment=0.05)
        for assignments in charges:
            tracker.charge(assignments)
        summary = tracker.summary()
        assert summary["assignments"] == tracker.total_assignments()
        assert summary["charges"] == len(charges)
