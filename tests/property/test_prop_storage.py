"""Property-based tests: every storage engine behaves like a dictionary.

The durable engines (SQLite, log-structured) are tested against the in-memory
reference implementation by replaying a random sequence of operations on both
and comparing the visible state — the standard model-based testing pattern.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.storage import LogStructuredEngine, MemoryEngine, SqliteEngine

# JSON-friendly values the engines must round-trip faithfully.
json_values = st.recursive(
    st.none() | st.booleans() | st.integers(-10**6, 10**6) | st.floats(allow_nan=False, allow_infinity=False, width=32) | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4) | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=10,
)

keys = st.text(alphabet="abcdefghij", min_size=1, max_size=4)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, json_values),
        st.tuples(st.just("delete"), keys, st.none()),
    ),
    max_size=30,
)


def apply_operations(engine, ops):
    engine.create_table("t")
    for op, key, value in ops:
        if op == "put":
            engine.put("t", key, value)
        else:
            engine.delete("t", key)


def model_state(ops):
    state = {}
    for op, key, value in ops:
        if op == "put":
            state[key] = value
        else:
            state.pop(key, None)
    return state


class TestEnginesMatchDictionarySemantics:
    @given(ops=operations)
    @settings(max_examples=60, deadline=None)
    def test_memory_engine_matches_model(self, ops):
        engine = MemoryEngine()
        apply_operations(engine, ops)
        assert dict(engine.items("t")) == model_state(ops)

    @given(ops=operations)
    @settings(max_examples=30, deadline=None)
    def test_sqlite_engine_matches_model(self, ops, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("prop") / "p.db")
        engine = SqliteEngine(path)
        apply_operations(engine, ops)
        assert dict(engine.items("t")) == model_state(ops)
        engine.close()

    @given(ops=operations)
    @settings(max_examples=30, deadline=None)
    def test_log_engine_matches_model_after_recovery(self, ops, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("prop") / "p")
        engine = LogStructuredEngine(path, snapshot_every=7)
        apply_operations(engine, ops)
        engine.close()
        recovered = LogStructuredEngine(path, snapshot_every=7)
        assert dict(recovered.items("t")) == model_state(ops)
        recovered.close()

    @given(ops=operations)
    @settings(max_examples=30, deadline=None)
    def test_versions_count_puts_per_key(self, ops):
        engine = MemoryEngine()
        apply_operations(engine, ops)
        # After a delete the version restarts, so track the model the same way.
        puts_since_delete: dict[str, int] = {}
        for op, key, _ in ops:
            if op == "put":
                puts_since_delete[key] = puts_since_delete.get(key, 0) + 1
            else:
                puts_since_delete.pop(key, None)
        for key, expected_version in puts_since_delete.items():
            assert engine.get_record("t", key).version == expected_version
