"""Property-based tests for the text-similarity utilities."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.utils.hashing import stable_hash
from repro.utils.text import (
    edit_distance,
    edit_similarity,
    jaccard_similarity,
    normalize_text,
    tokenize,
)

texts = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd", "Zs"), max_codepoint=0x24F),
    max_size=40,
)


class TestSimilarityProperties:
    @given(left=texts, right=texts)
    @settings(max_examples=150, deadline=None)
    def test_jaccard_is_symmetric_and_bounded(self, left, right):
        score = jaccard_similarity(left, right)
        assert 0.0 <= score <= 1.0
        assert score == jaccard_similarity(right, left)

    @given(text=texts)
    @settings(max_examples=100, deadline=None)
    def test_jaccard_identity(self, text):
        assert jaccard_similarity(text, text) == 1.0

    @given(left=texts, right=texts)
    @settings(max_examples=100, deadline=None)
    def test_edit_distance_symmetry_and_bounds(self, left, right):
        distance = edit_distance(left, right)
        assert distance == edit_distance(right, left)
        assert distance <= max(len(left), len(right))
        assert (distance == 0) == (left == right)

    @given(left=texts, right=texts, mid=texts)
    @settings(max_examples=60, deadline=None)
    def test_edit_distance_triangle_inequality(self, left, mid, right):
        assert edit_distance(left, right) <= edit_distance(left, mid) + edit_distance(mid, right)

    @given(left=texts, right=texts)
    @settings(max_examples=100, deadline=None)
    def test_edit_similarity_bounded(self, left, right):
        assert 0.0 <= edit_similarity(left, right) <= 1.0


class TestNormalisationProperties:
    @given(text=texts)
    @settings(max_examples=100, deadline=None)
    def test_normalize_is_idempotent(self, text):
        once = normalize_text(text)
        assert normalize_text(once) == once

    @given(text=texts)
    @settings(max_examples=100, deadline=None)
    def test_tokenize_output_is_lowercase_alnum(self, text):
        for token in tokenize(text):
            assert token == token.lower()
            assert token.isalnum()

    @given(text=st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789 -_.", max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_tokenize_insensitive_to_case(self, text):
        # Restricted to ASCII: Unicode case folding (e.g. 'ſ' -> 'S') can
        # legitimately change which characters the tokenizer keeps.
        assert tokenize(text.upper()) == tokenize(text.lower())


class TestHashingProperties:
    @given(value=st.dictionaries(st.text(max_size=6), st.integers(), max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_stable_hash_deterministic_across_key_order(self, value):
        reordered = dict(reversed(list(value.items())))
        assert stable_hash(value) == stable_hash(reordered)

    @given(value=st.text(max_size=30), length=st.integers(min_value=1, max_value=40))
    @settings(max_examples=100, deadline=None)
    def test_stable_hash_respects_length(self, value, length):
        assert len(stable_hash(value, length=length)) == length
