"""Property-based tests for the quality-control aggregators."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.quality import (
    DawidSkeneAggregator,
    MajorityVoteAggregator,
    OneParameterEMAggregator,
    WeightedVoteAggregator,
)

labels = st.sampled_from(["Yes", "No", "Maybe"])
worker_ids = st.sampled_from([f"w{i}" for i in range(6)])

# A vote table: 1-8 items, each with 1-7 (worker, answer) votes.
vote_tables = st.dictionaries(
    keys=st.integers(min_value=0, max_value=7),
    values=st.lists(st.tuples(worker_ids, labels), min_size=1, max_size=7),
    min_size=1,
    max_size=8,
)

AGGREGATORS = [
    MajorityVoteAggregator(),
    WeightedVoteAggregator(),
    DawidSkeneAggregator(max_iterations=15),
    OneParameterEMAggregator(max_iterations=15),
]


class TestAggregatorInvariants:
    @given(votes=vote_tables)
    @settings(max_examples=40, deadline=None)
    def test_every_item_gets_a_decision_from_its_own_answers(self, votes):
        for aggregator in AGGREGATORS:
            result = aggregator.aggregate(votes)
            assert set(result.decisions) == set(votes)
            for item, decision in result.decisions.items():
                answers_given = {answer for _, answer in votes[item]}
                all_labels = {a for item_votes in votes.values() for _, a in item_votes}
                # MV/WMV pick among the item's own answers; EM may pick any
                # label seen in the problem (posterior over the full label set).
                assert decision in (answers_given if aggregator.name in ("mv", "wmv") else all_labels)

    @given(votes=vote_tables)
    @settings(max_examples=40, deadline=None)
    def test_confidences_are_probabilities(self, votes):
        for aggregator in AGGREGATORS:
            result = aggregator.aggregate(votes)
            for confidence in result.confidences.values():
                assert 0.0 <= confidence <= 1.0 + 1e-9

    @given(votes=vote_tables)
    @settings(max_examples=40, deadline=None)
    def test_unanimous_items_keep_their_answer(self, votes):
        unanimous = {
            item: item_votes
            for item, item_votes in votes.items()
            if len({answer for _, answer in item_votes}) == 1
        }
        if not unanimous:
            return
        for aggregator in AGGREGATORS:
            result = aggregator.aggregate(votes)
            for item, item_votes in unanimous.items():
                # EM can in principle overturn a unanimous item if the voters
                # are estimated to be systematically wrong, but with at most 8
                # items and no contradictory evidence this does not happen;
                # MV/WMV must never overturn it.
                if aggregator.name in ("mv", "wmv"):
                    assert result.decisions[item] == item_votes[0][1]

    @given(votes=vote_tables)
    @settings(max_examples=30, deadline=None)
    def test_aggregation_is_deterministic(self, votes):
        for aggregator in AGGREGATORS:
            first = aggregator.aggregate(votes)
            second = aggregator.aggregate(votes)
            assert first.decisions == second.decisions

    @given(votes=vote_tables)
    @settings(max_examples=30, deadline=None)
    def test_worker_quality_estimates_are_probabilities(self, votes):
        for aggregator in AGGREGATORS[1:]:
            result = aggregator.aggregate(votes)
            for quality in result.worker_quality.values():
                assert 0.0 <= quality <= 1.0 + 1e-9


class TestMajorityVoteDominance:
    @given(
        num_items=st.integers(min_value=1, max_value=10),
        redundancy=st.integers(min_value=1, max_value=7),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_unanimous_perfect_workers_recover_truth_exactly(self, num_items, redundancy, seed):
        import random

        rng = random.Random(seed)
        truth = {item: rng.choice(["Yes", "No"]) for item in range(num_items)}
        votes = {
            item: [(f"w{j}", truth[item]) for j in range(redundancy)] for item in range(num_items)
        }
        result = MajorityVoteAggregator().aggregate(votes)
        assert result.decisions == truth
        assert all(confidence == 1.0 for confidence in result.confidences.values())
