"""Property-based tests for the consistent-hash ring and its engine.

Three families of properties:

* **Ring stability** — adding one member to an N-member ring at 64 virtual
  nodes moves at most ~2K/(N+1) of K keys, every moved key moves *to* the
  new member (survivors never reshuffle among themselves), and removing the
  member again restores the exact original routing.
* **Routing determinism** — the ring is a pure function of the member-name
  set and the virtual-node count: construction order, process state and
  reopen cycles cannot change any key's owner.
* **Scan equivalence** — a random operation sequence interleaved with a
  random *rebalance* leaves the ring engine observably identical to the
  in-memory reference engine: items, versions, counts, bulk lookups and
  every page of every paginated walk.
* **Replica placement** — every key's replica set is exactly R distinct
  members, shifts minimally (never by more than the one changed member) on
  join/leave, and the R=2 engine stays observably identical to the memory
  reference under random operations with a member killed mid-sequence —
  with the R-successor placement audited on the physical children after
  every rebalance.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage import ConsistentHashEngine, HashRing, MemoryEngine

pytestmark = pytest.mark.ring

NUM_KEYS = 300
BASE_MEMBERS = ("node-a", "node-b", "node-c", "node-d")

# JSON-friendly values the engines must round-trip faithfully.
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-(10**6), 10**6)
    | st.floats(allow_nan=False, allow_infinity=False, width=32)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=6), children, max_size=3),
    max_leaves=6,
)

keys = st.text(alphabet="abcdefghij", min_size=1, max_size=3)

batches = st.lists(st.tuples(keys, json_values), max_size=8)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, json_values),
        st.tuples(st.just("delete"), keys, st.none()),
        st.tuples(st.just("put_many"), batches, st.booleans()),
    ),
    max_size=16,
)


def sample_keys(seed: int, count: int = NUM_KEYS) -> list[str]:
    rng = random.Random(seed)
    return [f"object-{rng.getrandbits(48):012x}" for _ in range(count)]


class TestRingStability:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_adding_one_member_moves_at_most_twice_the_ideal_fraction(self, seed):
        workload = sample_keys(seed)
        before = HashRing(BASE_MEMBERS, virtual_nodes=64)
        after = HashRing(BASE_MEMBERS + ("node-new",), virtual_nodes=64)
        moved = [key for key in workload if before.owner(key) != after.owner(key)]
        # Ideal: K/(N+1) keys move.  64 vnodes keep the variance tight, so
        # twice the ideal is a conservative ceiling — and miles below the
        # near-total reshuffle a modulo scheme would force.
        assert len(moved) <= 2 * NUM_KEYS // (len(BASE_MEMBERS) + 1)
        # Every displaced key went to the joiner; survivors never trade keys.
        assert all(after.owner(key) == "node-new" for key in moved)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_membership_round_trip_restores_routing(self, seed):
        workload = sample_keys(seed, count=120)
        original = HashRing(BASE_MEMBERS, virtual_nodes=32)
        grown = HashRing(BASE_MEMBERS + ("node-new",), virtual_nodes=32)
        shrunk = HashRing(grown.names[:-1], virtual_nodes=32)  # drop node-new
        assert [shrunk.owner(k) for k in workload] == [
            original.owner(k) for k in workload
        ]

    @given(
        seed=st.integers(0, 10**6),
        vnodes=st.sampled_from([1, 8, 64]),
        members=st.lists(
            st.text(alphabet="mnopqr", min_size=1, max_size=6),
            min_size=1,
            max_size=6,
            unique=True,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_routing_is_deterministic_and_order_independent(self, seed, vnodes, members):
        workload = sample_keys(seed, count=60)
        rng = random.Random(seed)
        shuffled = list(members)
        rng.shuffle(shuffled)
        one = HashRing(members, virtual_nodes=vnodes)
        two = HashRing(shuffled, virtual_nodes=vnodes)
        owners = [one.owner(key) for key in workload]
        assert owners == [two.owner(key) for key in workload]
        assert set(owners) <= set(members)


def apply_operations(engine, ops):
    engine.create_table("t")
    returned = []
    for op, first, second in ops:
        if op == "put":
            engine.put("t", first, second)
        elif op == "delete":
            engine.delete("t", first)
        else:
            records = engine.put_many("t", first, if_absent=second)
            returned.extend((r.key, r.value, r.version) for r in records)
    return returned


def observable_state(engine):
    records = list(engine.scan("t"))
    return {
        "items": [(r.key, r.value) for r in records],
        "versions": {r.key: r.version for r in records},
        "count": engine.count("t"),
    }


def paginate_fully(engine, page_size):
    pages, cursor = [], None
    while True:
        page = list(engine.scan("t", limit=page_size, start_after=cursor))
        pages.extend((r.key, r.value, r.version) for r in page)
        if len(page) < page_size:
            return pages
        cursor = page[-1].key


class TestRingEngineEquivalence:
    """Ring-vs-memory equivalence with a rebalance dropped mid-sequence."""

    @given(
        ops_before=operations,
        ops_after=operations,
        grow=st.booleans(),
        shrink=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_ops_with_rebalance_match_memory_reference(
        self, ops_before, ops_after, grow, shrink
    ):
        reference = MemoryEngine()
        ring = ConsistentHashEngine(
            {f"n{i}": MemoryEngine() for i in range(3)},
            virtual_nodes=16,
            rebalance_batch_size=4,  # force multi-wave migrations
        )
        returned = apply_operations(ring, ops_before)
        expected = apply_operations(reference, ops_before)

        if grow:
            ring.rebalance(add={"n3": MemoryEngine()})
        if shrink:
            ring.rebalance(remove=["n1"])

        returned += apply_operations(ring, ops_after)
        expected += apply_operations(reference, ops_after)

        assert returned == expected  # put_many records agree item-for-item
        assert observable_state(ring) == observable_state(reference)
        probe = sorted({key for key, _ in observable_state(reference)["items"]})
        probe = (probe + ["zz-missing"])[:8]
        assert ring.get_many("t", probe, default="<absent>") == reference.get_many(
            "t", probe, default="<absent>"
        )
        for page_size in (1, 3, 7):
            assert paginate_fully(ring, page_size) == [
                (r.key, r.value, r.version) for r in reference.scan("t")
            ], page_size
            assert ring.scan_keys("t", limit=page_size) == [
                r.key for r in reference.scan("t", limit=page_size)
            ]
        ring.close()

@pytest.mark.replica
class TestReplicaPlacementProperties:
    @given(
        seed=st.integers(0, 10**6),
        replicas=st.integers(1, 4),
        members=st.lists(
            st.text(alphabet="mnopqr", min_size=1, max_size=6),
            min_size=4,
            max_size=7,
            unique=True,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_every_key_lands_on_exactly_r_distinct_members(
        self, seed, replicas, members
    ):
        ring = HashRing(members, virtual_nodes=16)
        for key in sample_keys(seed, count=80):
            names = ring.successors(key, replicas)
            assert len(names) == replicas
            assert len(set(names)) == replicas
            assert set(names) <= set(members)
            assert names[0] == ring.owner(key)

    @given(seed=st.integers(0, 10**6), replicas=st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_replica_sets_shift_minimally_on_join_and_leave(self, seed, replicas):
        """Membership changes by one member change any key's replica set by
        at most one name — and the only possible entrant on a join is the
        joiner itself (survivors never trade replicas among themselves)."""
        workload = sample_keys(seed, count=150)
        before = HashRing(BASE_MEMBERS, virtual_nodes=64)
        grown = HashRing(BASE_MEMBERS + ("node-new",), virtual_nodes=64)
        for key in workload:
            old = set(before.successors(key, replicas))
            new = set(grown.successors(key, replicas))
            assert len(old - new) <= 1 and len(new - old) <= 1
            assert new - old <= {"node-new"}
        # Leave: the departed member's slot is the only one that refills —
        # a key that never replicated on it keeps its set verbatim.
        shrunk = HashRing(BASE_MEMBERS[:-1], virtual_nodes=64)
        departed = BASE_MEMBERS[-1]
        for key in workload:
            old = set(before.successors(key, replicas))
            new = set(shrunk.successors(key, replicas))
            assert old - new <= {departed}
            assert len(new - old) <= 1
            if departed not in old:
                assert new == old

    @given(
        ops_before=operations,
        ops_after=operations,
        victim=st.sampled_from(["n0", "n1", "n2"]),
        rebalance_after=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_ops_with_member_killed_mid_sequence(
        self, ops_before, ops_after, victim, rebalance_after
    ):
        """R=2 ring vs memory reference with the member killed between two
        random op sequences — and optionally a dead-member-replacement
        rebalance afterwards, audited key-by-key on the physical children."""
        reference = MemoryEngine()
        ring = ConsistentHashEngine(
            {f"n{i}": MemoryEngine() for i in range(3)},
            virtual_nodes=16,
            replicas=2,
            rebalance_batch_size=4,
        )
        returned = apply_operations(ring, ops_before)
        expected = apply_operations(reference, ops_before)
        ring.mark_down(victim)
        returned += apply_operations(ring, ops_after)
        expected += apply_operations(reference, ops_after)
        assert returned == expected
        assert observable_state(ring) == observable_state(reference)

        if rebalance_after:
            ring.rebalance(add={"n3": MemoryEngine()}, remove=[victim])
            assert observable_state(ring) == observable_state(reference)
            # Post-rebalance placement audit: every key sits on exactly its
            # R successors, at the facade's version — nowhere else.
            for record in ring.scan("t"):
                replica_set = set(ring._replica_names(record.key))
                for name, child in ring._children.items():
                    envelope = child.get("t", record.key)
                    if name in replica_set:
                        assert envelope is not None, (record.key, name)
                        assert envelope["n"] == record.version
                    else:
                        assert envelope is None, (record.key, name)
        ring.close()

    @given(ops=operations, grow=st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_rebalance_preserves_r_successor_invariant(self, ops, grow):
        """The acceptance audit: after any random workload and a rebalance
        in either direction, the physical placement is exactly the R
        successors of every live key."""
        ring = ConsistentHashEngine(
            {f"n{i}": MemoryEngine() for i in range(4)},
            virtual_nodes=16,
            replicas=2,
            rebalance_batch_size=4,
        )
        apply_operations(ring, ops)
        if grow:
            ring.rebalance(add={"n4": MemoryEngine()})
        else:
            ring.rebalance(remove=["n1"])
        for record in ring.scan("t"):
            replica_set = set(ring._replica_names(record.key))
            holders = {
                name
                for name, child in ring._children.items()
                if child.get("t", record.key) is not None
            }
            assert holders == replica_set, record.key
        ring.close()


class TestRingReopenProperties:
    @given(ops=operations, seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_routing_survives_reopen(self, ops, seed, tmp_path_factory):
        """Reopening the same children yields the same placement, the same
        scan, and the same routing for fresh keys."""
        base = tmp_path_factory.mktemp("ring_prop")
        from repro.storage import SqliteEngine

        def children():
            return {
                f"n{i}": SqliteEngine(str(base / f"n{i}.db")) for i in range(3)
            }

        ring = ConsistentHashEngine(children(), virtual_nodes=16)
        apply_operations(ring, ops)
        state = observable_state(ring)
        placement = {
            name: set(child.scan_keys("t")) for name, child in ring._children.items()
        }
        ring.close()

        reopened = ConsistentHashEngine(children(), virtual_nodes=16)
        assert observable_state(reopened) == state
        for name, child in reopened._children.items():
            assert set(child.scan_keys("t")) == placement[name]
        probe = sample_keys(seed, count=5)
        owners = [reopened._ring.owner(key) for key in probe]
        reopened.close()

        third = ConsistentHashEngine(children(), virtual_nodes=16)
        assert [third._ring.owner(key) for key in probe] == owners
        third.close()
