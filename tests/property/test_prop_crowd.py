"""Property-based tests for CrowdData caching and transitive-join inference."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import CrowdContext
from repro.operators.transitive_join import _UnionFind
from repro.presenters import ImageLabelPresenter
from repro.simulation import precision, recall


class TestCrowdDataCachingInvariant:
    @given(
        num_images=st.integers(min_value=1, max_value=12),
        redundancy=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=25, deadline=None)
    def test_rerun_never_publishes_new_tasks(self, num_images, redundancy, seed):
        """For any experiment size and redundancy, a rerun is crowd-free."""
        images = [f"http://img/{seed}/{i}.jpg" for i in range(num_images)]
        context = CrowdContext.in_memory(seed=seed, ground_truth=lambda obj: "Yes")

        def run():
            data = context.CrowdData(images, "prop_table")
            data.set_presenter(ImageLabelPresenter())
            data.publish_task(n_assignments=redundancy).get_result().mv()
            return data.column("mv")

        first = run()
        tasks_after_first = context.client.statistics()["tasks"]
        second = run()
        assert first == second
        assert context.client.statistics()["tasks"] == tasks_after_first == num_images
        context.close()


class TestUnionFindProperties:
    @given(
        unions=st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=40
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_union_find_is_an_equivalence_relation(self, unions):
        uf = _UnionFind()
        for left, right in unions:
            uf.union(left, right)
        items = {item for pair in unions for item in pair}
        for item in items:
            assert uf.connected(item, item)
        for left, right in unions:
            assert uf.connected(left, right)
            assert uf.connected(right, left)
        # Transitivity over the recorded pairs.
        for a, b in unions:
            for c, d in unions:
                if uf.connected(b, c):
                    assert uf.connected(a, d)


class TestPairMetricsProperties:
    pair_sets = st.sets(
        st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(lambda p: p[0] != p[1]),
        max_size=20,
    )

    @given(predicted=pair_sets, truth=pair_sets)
    @settings(max_examples=100, deadline=None)
    def test_precision_recall_bounds(self, predicted, truth):
        assert 0.0 <= precision(predicted, truth) <= 1.0
        assert 0.0 <= recall(predicted, truth) <= 1.0

    @given(pairs=pair_sets)
    @settings(max_examples=50, deadline=None)
    def test_perfect_prediction_scores_one(self, pairs):
        assert precision(pairs, pairs) == 1.0
        assert recall(pairs, pairs) == 1.0
