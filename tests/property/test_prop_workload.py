"""Hypothesis properties of the workload generators and metrics math.

Four guarantees the scenario harness leans on:

* seed determinism — the same parameters and seed always emit the same
  event stream (arrivals and keys);
* statistical sanity — the empirical arrival rate tracks λ within
  tolerance (seeds are derived deterministically from the drawn rate, so
  the check is flake-free);
* Zipf skew is monotone — raising ``s`` never makes the hottest key less
  probable;
* the percentile / SLA arithmetic matches naive reference implementations
  (including ``statistics.quantiles(method="inclusive")``).
"""

from __future__ import annotations

import random
import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.workload import (
    ZipfKeyGenerator,
    build_arrival_process,
    percentile,
    sla_attainment,
)

pytestmark = pytest.mark.workload

rates = st.floats(min_value=0.1, max_value=50.0, allow_nan=False)
kinds = st.sampled_from(["poisson", "bursty", "diurnal"])
seeds = st.integers(min_value=0, max_value=2**32 - 1)


@given(kind=kinds, rate=rates, seed=seeds)
@settings(max_examples=60, deadline=None)
def test_same_seed_same_event_stream(kind, rate, seed):
    process = build_arrival_process(kind, rate)
    first = process.generate(40, random.Random(seed))
    second = process.generate(40, random.Random(seed))
    assert first == second
    times = [a.time for a in first]
    assert all(later > earlier for earlier, later in zip(times, times[1:]))


@given(rate=rates)
@settings(max_examples=40, deadline=None)
def test_empirical_poisson_rate_tracks_lambda(rate):
    # Seed derived from the rate: the property sweeps rates, not RNG tails,
    # so the tolerance never flakes on an unlucky seed.
    seed = int(rate * 1000) + 1
    count = 400
    arrivals = build_arrival_process("poisson", rate).generate(
        count, random.Random(seed)
    )
    empirical = count / arrivals[-1].time
    # For n=400 the makespan's relative sd is 1/sqrt(400) = 5%; ±25% is 5σ.
    assert 0.75 * rate < empirical < 1.25 * rate


@given(
    num_keys=st.integers(min_value=2, max_value=500),
    low=st.floats(min_value=0.0, max_value=2.0),
    delta=st.floats(min_value=0.01, max_value=2.0),
)
@settings(max_examples=60, deadline=None)
def test_zipf_top_key_probability_monotone_in_skew(num_keys, low, delta):
    flatter = ZipfKeyGenerator(num_keys, skew=low).probabilities()
    steeper = ZipfKeyGenerator(num_keys, skew=low + delta).probabilities()
    assert steeper[0] > flatter[0] - 1e-12
    assert steeper[-1] < flatter[-1] + 1e-12
    assert sum(steeper) == pytest.approx(1.0)
    # Probabilities are non-increasing in rank at any skew.
    assert all(a >= b - 1e-12 for a, b in zip(steeper, steeper[1:]))


@given(
    num_keys=st.integers(min_value=2, max_value=50),
    skew=st.floats(min_value=0.0, max_value=3.0),
    seed=seeds,
)
@settings(max_examples=40, deadline=None)
def test_zipf_sampling_deterministic_and_in_universe(num_keys, skew, seed):
    generator = ZipfKeyGenerator(num_keys, skew)
    first = generator.sample_many(30, random.Random(seed))
    assert first == generator.sample_many(30, random.Random(seed))
    universe = {generator.key(rank) for rank in range(num_keys)}
    assert set(first) <= universe


latency_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=200,
)


@given(values=latency_lists)
@settings(max_examples=80, deadline=None)
def test_percentiles_match_statistics_quantiles(values):
    quartiles = statistics.quantiles(values, n=4, method="inclusive")
    assert percentile(values, 25) == pytest.approx(quartiles[0], abs=1e-6)
    assert percentile(values, 50) == pytest.approx(quartiles[1], abs=1e-6)
    assert percentile(values, 75) == pytest.approx(quartiles[2], abs=1e-6)
    centiles = statistics.quantiles(values, n=100, method="inclusive")
    assert percentile(values, 95) == pytest.approx(centiles[94], abs=1e-6)
    assert percentile(values, 99) == pytest.approx(centiles[98], abs=1e-6)
    assert percentile(values, 0) == min(values)
    assert percentile(values, 100) == max(values)


@given(
    values=latency_lists,
    sla=st.floats(min_value=0.01, max_value=1e6, allow_nan=False),
)
@settings(max_examples=80, deadline=None)
def test_sla_attainment_matches_naive_count(values, sla):
    naive = sum(1 for v in values if v <= sla) / len(values)
    assert sla_attainment(values, sla) == pytest.approx(naive)
