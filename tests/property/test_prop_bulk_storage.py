"""Property-based tests: the bulk API is one equivalence class across engines.

Seeded from the ``test_prop_storage`` pattern: a random operation sequence
mixing single puts/deletes with ``put_many`` batches (both upsert and
``if_absent`` mode) is replayed on the in-memory reference engine and on both
durable engines, and every observable — ``items``, per-key versions, the
records returned by ``put_many`` itself, ``get_many`` lookups, and paginated
``scan`` pages — must agree exactly.  The log engine is additionally closed
and recovered before comparison, so the group-append log record is proven to
replay to the same state it described.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import StorageError
from repro.storage import LogStructuredEngine, MemoryEngine, PartitionedEngine
from repro.storage.testing import ENGINE_NAMES, build_engine

# JSON-friendly values the engines must round-trip faithfully.
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-(10**6), 10**6)
    | st.floats(allow_nan=False, allow_infinity=False, width=32)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=6), children, max_size=3),
    max_leaves=6,
)

keys = st.text(alphabet="abcdefghij", min_size=1, max_size=3)

batches = st.lists(st.tuples(keys, json_values), max_size=8)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, json_values),
        st.tuples(st.just("delete"), keys, st.none()),
        st.tuples(st.just("put_many"), batches, st.booleans()),
    ),
    max_size=20,
)


def apply_operations(engine, ops):
    """Replay *ops* on *engine*, returning every record put_many handed back."""
    engine.create_table("t")
    returned = []
    for op, first, second in ops:
        if op == "put":
            engine.put("t", first, second)
        elif op == "delete":
            engine.delete("t", first)
        else:
            records = engine.put_many("t", first, if_absent=second)
            returned.extend((r.key, r.value, r.version) for r in records)
    return returned


def observable_state(engine):
    """Everything the bulk contract promises, as comparable values."""
    records = list(engine.scan("t"))
    return {
        "items": [(r.key, r.value) for r in records],
        "versions": {r.key: r.version for r in records},
        "count": engine.count("t"),
    }


def paginate_fully(engine, page_size):
    """Walk the table in pages of *page_size*, returning the concatenation."""
    pages, cursor = [], None
    while True:
        page = list(engine.scan("t", limit=page_size, start_after=cursor))
        pages.extend((r.key, r.value, r.version) for r in page)
        if len(page) < page_size:
            return pages
        cursor = page[-1].key


def build_engines(tmp_path_factory):
    """One engine per registry entry (memory first: the reference model)."""
    base = tmp_path_factory.mktemp("bulk_prop")
    engines = {}
    for name in ENGINE_NAMES:
        engine = build_engine(name, base / name)
        if isinstance(engine, PartitionedEngine):
            # Small merge pages force the k-way merge-scan to actually paginate.
            engine._merge_page_size = 4
        engines[name] = engine
    return engines


def close_engines(engines):
    for name, engine in engines.items():
        if name != "memory":
            engine.close()


class TestBulkEquivalenceClass:
    @given(ops=operations)
    @settings(max_examples=40, deadline=None)
    def test_engines_agree_on_state_returns_and_pagination(self, ops, tmp_path_factory):
        engines = build_engines(tmp_path_factory)
        returned = {name: apply_operations(engine, ops) for name, engine in engines.items()}
        states = {name: observable_state(engine) for name, engine in engines.items()}

        reference_returned = returned["memory"]
        reference_state = states["memory"]
        present_keys = [key for key, _ in reference_state["items"]]
        probe = sorted({first for op, first, _ in ops if op == "put"})
        probe = (probe + ["zz-missing"])[:6]

        reference_lookup = engines["memory"].get_many("t", probe, default="<absent>")
        for name, engine in engines.items():
            assert returned[name] == reference_returned, name
            assert states[name] == reference_state, name
            assert engine.get_many("t", probe, default="<absent>") == reference_lookup, name
            for page_size in (1, 2, 5):
                expected = [
                    (r.key, r.value, r.version) for r in engines["memory"].scan("t")
                ]
                assert paginate_fully(engine, page_size) == expected, (name, page_size)
                assert engine.scan_keys("t", limit=page_size) == [
                    key for key, _, _ in expected[:page_size]
                ], (name, page_size)
            if present_keys:
                # A mid-table cursor yields exactly the suffix after it.
                cursor = present_keys[len(present_keys) // 2]
                suffix = [
                    (r.key, r.value) for r in engine.scan("t", start_after=cursor)
                ]
                position = present_keys.index(cursor)
                assert suffix == reference_state["items"][position + 1 :], name

        close_engines(engines)

    @given(ops=operations)
    @settings(max_examples=25, deadline=None)
    def test_log_engine_recovers_bulk_writes(self, ops, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("bulk_prop_log") / "p")
        reference = MemoryEngine()
        apply_operations(reference, ops)

        engine = LogStructuredEngine(path, snapshot_every=1000)
        apply_operations(engine, ops)
        # Simulate a crash: drop the in-memory state without snapshotting,
        # then recover purely from the log's group-append records.
        engine._log_file.close()
        engine._closed = True
        recovered = LogStructuredEngine(path, snapshot_every=1000)
        assert observable_state(recovered) == observable_state(reference)
        recovered.close()

    @given(ops=operations, bad_cursor=st.text(alphabet="xyz", min_size=1, max_size=3))
    @settings(max_examples=20, deadline=None)
    def test_unknown_cursor_raises_on_every_engine(self, ops, bad_cursor, tmp_path_factory):
        engines = build_engines(tmp_path_factory)
        for name, engine in engines.items():
            apply_operations(engine, ops)
            with pytest.raises(StorageError):
                list(engine.scan("t", start_after=bad_cursor))
            with pytest.raises(ValueError):
                list(engine.scan("t", limit=-1))
        close_engines(engines)
